//! Primary/backup replication for the sharded tier: journal shipping,
//! fencing epochs, and the takeover handshake.
//!
//! Each shard of [`crate::sharded::ShardedServer`] is a *replica set*:
//! one active primary plus (by default) one standby backup. The primary
//! applies every write locally and *ships* it to the backup as an
//! epoch-numbered [`ShipDelta`] before acknowledging the client — the
//! shipped stream is exactly the primary's dirty-writeback journal
//! (trains, removes, durability barriers), so the backup replays the
//! same envelope trains the writeback path batches. Shipping is
//! asynchronous but bounded: the primary stalls once
//! `shipped - applied` exceeds [`ReplicaConfig::max_ship_lag`], and a
//! flush barrier waits for the backup to fully catch up before acking —
//! so an acked flush means both replicas hold the data, and the
//! client-side runtime journal always covers the un-replicated window.
//!
//! ## Fencing epochs
//!
//! Failover must make late writes from a deposed primary harmless. The
//! client that detects a dead/stalled primary bumps the shard's
//! *fencing epoch* **before** the takeover handshake; every write
//! carries the fence its client read at send time, and a replica
//! rejects writes whose fence is stale or that arrive while it is not
//! the active replica. Ships are fenced by sender: a replica applies a
//! [`ReplicaRequest::Replicate`] only if the sender is still the active
//! replica — a zombie ship from a deposed primary still bumps the
//! applied epoch (so replication barriers cannot wedge) but never
//! touches the store.
//!
//! ## Takeover handshake
//!
//! Failover is client-driven and serialized per shard by a lock:
//! 1. mark the suspect replica dead, take the failover lock, re-check
//!    (another client may have already completed the takeover);
//! 2. bump `fencing_epoch` — writes stamped with the old fence bounce
//!    from every replica from this point on;
//! 3. send [`ReplicaRequest::TakeOver`] to the standby. FIFO channel
//!    order guarantees every delta the old primary shipped before dying
//!    is applied before the ack — the backup replays its shipped
//!    journal as part of the handshake;
//! 4. flip `active`, bump the shard generation: the runtime's existing
//!    crash-detection path (generation diff → journal replay) re-puts
//!    the client journal, covering the bounded lag window the backup
//!    may still miss.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::fleet::{FleetEvent, FleetEventLog};
use crate::transport::ObjKey;

/// Replication knobs for the sharded tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplicaConfig {
    /// Replicas per shard (1 = unreplicated, 2 = primary + backup; values
    /// above 2 are clamped — shipping is pairwise, not chained).
    pub replicas: usize,
    /// Max ship epochs the backup may lag before the primary blocks new
    /// writes on it catching up.
    pub max_ship_lag: u64,
    /// Race a hedged read against the backup if the primary has not
    /// answered within this window (None = never hedge). First response
    /// wins; a primary win counts as `hedge_wasted`.
    pub hedge_after: Option<Duration>,
    /// Declare the active replica suspect if a request gets no response
    /// within this window and start failover (None = wait forever; kills
    /// are then detected by channel disconnect only).
    pub health_timeout: Option<Duration>,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            replicas: 2,
            max_ship_lag: 8,
            hedge_after: None,
            health_timeout: None,
        }
    }
}

impl ReplicaConfig {
    /// Effective replica count (clamped to the supported 1..=2 range).
    pub fn replica_count(&self) -> usize {
        self.replicas.clamp(1, 2)
    }
}

/// Per-shard state shared between every replica thread and every client:
/// the fencing epoch, the active-replica pointer, ship progress, and
/// liveness flags.
pub(crate) struct ReplicaShared {
    /// Fencing epoch: bumped by the failover initiator *before* the
    /// takeover handshake. Writes stamped with an older fence bounce.
    pub fencing_epoch: AtomicU64,
    /// Index of the replica currently serving the key range.
    pub active: AtomicU64,
    /// Shard incarnation: bumps on crash *and* on failover, so the
    /// runtime's generation watch triggers journal replay after takeover.
    pub generation: AtomicU64,
    /// Ship epochs the active replica has sent.
    pub shipped: AtomicU64,
    /// Ship epochs the standby has consumed (fenced ships count too, so
    /// barriers cannot wedge on rejected zombies).
    pub applied: AtomicU64,
    /// Liveness per replica: cleared by kills and by clients that
    /// observed a disconnect or health timeout.
    pub alive: Vec<AtomicBool>,
    /// Serializes the takeover handshake across clients.
    pub failover_lock: Mutex<()>,
}

impl ReplicaShared {
    pub(crate) fn new(replicas: usize) -> Self {
        ReplicaShared {
            fencing_epoch: AtomicU64::new(0),
            active: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            shipped: AtomicU64::new(0),
            applied: AtomicU64::new(0),
            alive: (0..replicas).map(|_| AtomicBool::new(true)).collect(),
            failover_lock: Mutex::new(()),
        }
    }

    pub(crate) fn active_idx(&self) -> usize {
        self.active.load(Ordering::SeqCst) as usize
    }

    /// True while the backup has consumed every shipped epoch — the gate a
    /// hedged read must pass (plus fence == 0) before trusting the backup.
    pub(crate) fn backup_caught_up(&self) -> bool {
        let shipped = self.shipped.load(Ordering::SeqCst);
        self.applied.load(Ordering::SeqCst) >= shipped
    }
}

/// One unit of the primary's shipped journal.
pub(crate) enum ShipDelta {
    /// A writeback train applied atomically in arrival order.
    Train(Vec<(ObjKey, Vec<u8>)>),
    Remove(ObjKey),
    /// Durability barrier: the backup clears its unacked set too.
    FlushAck,
}

pub(crate) enum ReplicaRequest {
    Fetch(ObjKey, SyncSender<ReplicaResponse>),
    Train {
        objs: Vec<(ObjKey, Vec<u8>)>,
        fence: u64,
        reply: SyncSender<ReplicaResponse>,
    },
    Remove {
        key: ObjKey,
        fence: u64,
        reply: SyncSender<ReplicaResponse>,
    },
    Contains(ObjKey, SyncSender<ReplicaResponse>),
    ResidentBytes(SyncSender<ReplicaResponse>),
    /// Durability barrier: waits for the backup to consume every shipped
    /// epoch before acking, so an acked flush is replicated.
    FlushAck {
        fence: u64,
        reply: SyncSender<ReplicaResponse>,
    },
    Digest(SyncSender<ReplicaResponse>),
    Crash(SyncSender<ReplicaResponse>),
    /// Hold the replica unresponsive until the paired sender drops.
    Stall(Receiver<()>),
    /// Journal shipping from the active replica to its standby.
    Replicate {
        from: usize,
        delta: ShipDelta,
    },
    /// Takeover handshake: by FIFO order every prior ship is applied
    /// before this is acked.
    TakeOver {
        reply: SyncSender<ReplicaResponse>,
    },
    Shutdown,
}

pub(crate) enum ReplicaResponse {
    /// Fetch result, stamped with the answering replica (hedge wins are
    /// attributed by this field).
    Data {
        from: usize,
        bytes: Option<Vec<u8>>,
    },
    Done,
    Bool(bool),
    Bytes(u64),
    Digest(Vec<(ObjKey, u64)>),
    /// Write rejected: stale fence or not the active replica.
    Fenced,
}

/// Cross-client counters (shared, atomic) — lives here so replica threads
/// can bump them; snapshotted into `sharded::ShardedStats`.
#[derive(Default)]
pub(crate) struct SharedCounters {
    pub coalesced_hits: AtomicU64,
    pub wire_fetches: AtomicU64,
    pub trains: AtomicU64,
    pub train_objects: AtomicU64,
    pub crashes: AtomicU64,
    pub dropped_objects: AtomicU64,
    pub failovers: AtomicU64,
    pub failover_attempts: AtomicU64,
    pub fenced_writes: AtomicU64,
    pub fenced_ships: AtomicU64,
    pub hedged_fetches: AtomicU64,
    pub hedge_wasted: AtomicU64,
    pub shipped_epochs: AtomicU64,
}

/// Handles for one shard's replica set: request channels, shared state,
/// and join handles (mutexed so kills work through `&self`).
pub(crate) struct ReplicaSet {
    pub txs: Vec<SyncSender<ReplicaRequest>>,
    pub shared: Arc<ReplicaShared>,
    pub joins: Vec<Mutex<Option<JoinHandle<()>>>>,
}

impl ReplicaSet {
    /// Kill replica `r`: mark it dead (clients stop routing to it), then
    /// shut the thread down. Killing a stalled replica requires releasing
    /// its stall guard first — the join waits for the loop to drain.
    pub(crate) fn kill(&self, r: usize) {
        self.shared.alive[r].store(false, Ordering::SeqCst);
        let _ = self.txs[r].send(ReplicaRequest::Shutdown);
        if let Ok(mut slot) = self.joins[r].lock() {
            if let Some(h) = slot.take() {
                let _ = h.join();
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn replica_loop(
    shard: u32,
    my_idx: usize,
    rx: Receiver<ReplicaRequest>,
    mut peer: Option<(usize, SyncSender<ReplicaRequest>)>,
    shared: Arc<ReplicaShared>,
    counters: Arc<SharedCounters>,
    events: Arc<FleetEventLog>,
    cfg: ReplicaConfig,
) {
    let mut store: HashMap<ObjKey, Vec<u8>> = HashMap::new();
    let mut resident = 0u64;
    // Keys put since the last durability barrier (BTreeSet: deterministic
    // drop order on crash, mirroring ChaosTransport).
    let mut unacked: BTreeSet<ObjKey> = BTreeSet::new();

    // Ship one journal delta to the standby, bounded by max_ship_lag.
    // Only the active replica ships; a send failure retires the peer and
    // closes the epoch gap so barriers stay consistent.
    let ship = |peer: &mut Option<(usize, SyncSender<ReplicaRequest>)>, delta: ShipDelta| {
        let Some((peer_idx, tx)) = peer.as_ref() else {
            return;
        };
        if shared.active.load(Ordering::SeqCst) as usize != my_idx {
            return;
        }
        let peer_idx = *peer_idx;
        if !shared.alive[peer_idx].load(Ordering::SeqCst) {
            // The standby was killed or demoted-suspect: stop shipping so
            // queues cannot wedge behind a corpse.
            *peer = None;
            return;
        }
        let epoch = shared.shipped.fetch_add(1, Ordering::SeqCst) + 1;
        if tx
            .send(ReplicaRequest::Replicate {
                from: my_idx,
                delta,
            })
            .is_err()
        {
            shared.applied.fetch_add(1, Ordering::SeqCst);
            *peer = None;
            return;
        }
        counters.shipped_epochs.fetch_add(1, Ordering::Relaxed);
        events.push(FleetEvent::JournalShip {
            shard,
            from: my_idx as u32,
            epoch,
        });
        while shared.shipped.load(Ordering::SeqCst) - shared.applied.load(Ordering::SeqCst)
            > cfg.max_ship_lag
        {
            if !shared.alive[peer_idx].load(Ordering::SeqCst) {
                break;
            }
            std::thread::yield_now();
        }
    };

    let fenced = |fence: u64| -> bool {
        shared.active.load(Ordering::SeqCst) as usize != my_idx
            || fence < shared.fencing_epoch.load(Ordering::SeqCst)
    };

    let apply_train = |store: &mut HashMap<ObjKey, Vec<u8>>,
                       resident: &mut u64,
                       unacked: &mut BTreeSet<ObjKey>,
                       objs: &[(ObjKey, Vec<u8>)]| {
        for (k, data) in objs {
            *resident += data.len() as u64;
            if let Some(old) = store.insert(*k, data.clone()) {
                *resident -= old.len() as u64;
            }
            unacked.insert(*k);
        }
    };

    while let Ok(req) = rx.recv() {
        match req {
            ReplicaRequest::Fetch(k, reply) => {
                let _ = reply.send(ReplicaResponse::Data {
                    from: my_idx,
                    bytes: store.get(&k).cloned(),
                });
            }
            ReplicaRequest::Train { objs, fence, reply } => {
                if fenced(fence) {
                    counters.fenced_writes.fetch_add(1, Ordering::Relaxed);
                    events.push(FleetEvent::FenceReject {
                        shard,
                        replica: my_idx as u32,
                        stamped: fence,
                    });
                    let _ = reply.send(ReplicaResponse::Fenced);
                    continue;
                }
                counters.trains.fetch_add(1, Ordering::Relaxed);
                counters
                    .train_objects
                    .fetch_add(objs.len() as u64, Ordering::Relaxed);
                apply_train(&mut store, &mut resident, &mut unacked, &objs);
                ship(&mut peer, ShipDelta::Train(objs));
                let _ = reply.send(ReplicaResponse::Done);
            }
            ReplicaRequest::Remove { key, fence, reply } => {
                if fenced(fence) {
                    counters.fenced_writes.fetch_add(1, Ordering::Relaxed);
                    events.push(FleetEvent::FenceReject {
                        shard,
                        replica: my_idx as u32,
                        stamped: fence,
                    });
                    let _ = reply.send(ReplicaResponse::Fenced);
                    continue;
                }
                if let Some(old) = store.remove(&key) {
                    resident -= old.len() as u64;
                }
                unacked.remove(&key);
                ship(&mut peer, ShipDelta::Remove(key));
                let _ = reply.send(ReplicaResponse::Done);
            }
            ReplicaRequest::Contains(k, reply) => {
                let _ = reply.send(ReplicaResponse::Bool(store.contains_key(&k)));
            }
            ReplicaRequest::ResidentBytes(reply) => {
                let _ = reply.send(ReplicaResponse::Bytes(resident));
            }
            ReplicaRequest::FlushAck { fence, reply } => {
                if fenced(fence) {
                    counters.fenced_writes.fetch_add(1, Ordering::Relaxed);
                    events.push(FleetEvent::FenceReject {
                        shard,
                        replica: my_idx as u32,
                        stamped: fence,
                    });
                    let _ = reply.send(ReplicaResponse::Fenced);
                    continue;
                }
                unacked.clear();
                ship(&mut peer, ShipDelta::FlushAck);
                // Replication barrier: an acked flush means the standby has
                // consumed every shipped epoch (or is dead). The runtime
                // clears its client journal on flush, so the journal must
                // only ever need to cover un-replicated writes.
                if let Some((peer_idx, _)) = peer.as_ref() {
                    let peer_idx = *peer_idx;
                    while !shared.backup_caught_up() {
                        if !shared.alive[peer_idx].load(Ordering::SeqCst) {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
                events.push(FleetEvent::FlushBarrier {
                    shard,
                    replica: my_idx as u32,
                    fence,
                });
                let _ = reply.send(ReplicaResponse::Done);
            }
            ReplicaRequest::Digest(reply) => {
                let v: Vec<(ObjKey, u64)> = store
                    .iter()
                    .map(|(k, b)| (*k, crate::sharded::fnv64(b)))
                    .collect();
                let _ = reply.send(ReplicaResponse::Digest(v));
            }
            ReplicaRequest::Crash(reply) => {
                counters.crashes.fetch_add(1, Ordering::Relaxed);
                shared.generation.fetch_add(1, Ordering::SeqCst);
                for k in std::mem::take(&mut unacked) {
                    if let Some(old) = store.remove(&k) {
                        resident -= old.len() as u64;
                        counters.dropped_objects.fetch_add(1, Ordering::Relaxed);
                    }
                }
                let _ = reply.send(ReplicaResponse::Done);
            }
            ReplicaRequest::Stall(gate) => {
                // Blocks until every sender for the gate is dropped.
                let _ = gate.recv();
            }
            ReplicaRequest::Replicate { from, delta } => {
                // Sender fencing: apply only if the shipper is still the
                // active replica; a zombie ship from a deposed primary is
                // discarded but still bumps `applied` so barriers and the
                // hedge gate stay consistent.
                if shared.active.load(Ordering::SeqCst) as usize == from {
                    match delta {
                        ShipDelta::Train(objs) => {
                            apply_train(&mut store, &mut resident, &mut unacked, &objs);
                        }
                        ShipDelta::Remove(key) => {
                            if let Some(old) = store.remove(&key) {
                                resident -= old.len() as u64;
                            }
                            unacked.remove(&key);
                        }
                        ShipDelta::FlushAck => unacked.clear(),
                    }
                } else {
                    counters.fenced_ships.fetch_add(1, Ordering::Relaxed);
                }
                shared.applied.fetch_add(1, Ordering::SeqCst);
            }
            ReplicaRequest::TakeOver { reply } => {
                // FIFO order means every ship the old primary enqueued
                // before dying has already been applied above — the shipped
                // journal is replayed by the time this ack leaves.
                events.push(FleetEvent::TakeOverDrained {
                    shard,
                    replica: my_idx as u32,
                });
                let _ = reply.send(ReplicaResponse::Done);
            }
            ReplicaRequest::Shutdown => break,
        }
    }
}
