//! Causal trace context and the transport wire tap.
//!
//! The runtime threads a [`TraceContext`] — the id of the causal span tree
//! it is currently executing plus the span that issued the wire operation —
//! into the transport before every fetch/put/remove/flush. Transports stamp
//! it into stored [`crate::envelope`]s (covered by the checksum) and record
//! every send and receive in a bounded, deterministic [`WireTap`] ring, so
//! a span tree can be joined against the exact wire messages it caused.
//!
//! Everything here is driven by the modeled execution only (no wall clock,
//! no allocation-order effects): two identical runs produce byte-identical
//! tap contents.

use std::collections::VecDeque;

/// Causal identity of one wire operation: which span tree (`trace`) and
/// which span within it (`span`) issued it. `NONE` (all zeros) means the
/// operation ran outside any traced operation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceContext {
    /// Id of the span tree (0 = untraced).
    pub trace: u64,
    /// Index of the issuing span within its tree.
    pub span: u32,
}

impl TraceContext {
    /// The untraced context (trace id 0).
    pub const NONE: TraceContext = TraceContext { trace: 0, span: 0 };

    /// Whether this context identifies a real span tree.
    pub fn is_traced(&self) -> bool {
        self.trace != 0
    }
}

/// Direction of one tap record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireDir {
    /// Request leaving the client.
    Send,
    /// Response arriving at the client.
    Recv,
}

impl WireDir {
    /// Stable snake_case name for exports.
    pub fn name(&self) -> &'static str {
        match self {
            WireDir::Send => "send",
            WireDir::Recv => "recv",
        }
    }
}

/// Which transport operation a tap record belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireOp {
    /// Demand fetch.
    Fetch,
    /// Batched (prefetch) fetch.
    FetchBatched,
    /// Store/evict.
    Put,
    /// Free.
    Remove,
    /// Durability acknowledgement.
    Flush,
}

impl WireOp {
    /// Every operation, in export order.
    pub const ALL: [WireOp; 5] = [
        WireOp::Fetch,
        WireOp::FetchBatched,
        WireOp::Put,
        WireOp::Remove,
        WireOp::Flush,
    ];

    /// Stable snake_case name for exports.
    pub fn name(&self) -> &'static str {
        match self {
            WireOp::Fetch => "fetch",
            WireOp::FetchBatched => "fetch_batched",
            WireOp::Put => "put",
            WireOp::Remove => "remove",
            WireOp::Flush => "flush",
        }
    }

    /// Position in [`WireOp::ALL`] (indexes per-op counter arrays).
    pub fn idx(&self) -> usize {
        match self {
            WireOp::Fetch => 0,
            WireOp::FetchBatched => 1,
            WireOp::Put => 2,
            WireOp::Remove => 3,
            WireOp::Flush => 4,
        }
    }
}

/// One send or receive observed at the client edge of the transport.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireRecord {
    /// Monotonic sequence number (counts every record ever taken, including
    /// ones later dropped from the ring).
    pub seq: u64,
    /// Send or receive.
    pub dir: WireDir,
    /// The transport operation.
    pub op: WireOp,
    /// Key: data-structure id (0 for flush).
    pub ds: u32,
    /// Key: object index (0 for flush).
    pub index: u64,
    /// Payload bytes carried (0 for requests without a payload).
    pub bytes: u64,
    /// For receives: whether the operation succeeded. Sends are always true.
    pub ok: bool,
    /// Causal context in force when the operation was issued.
    pub ctx: TraceContext,
}

/// Bounded ring of [`WireRecord`]s. Oldest records are dropped (and
/// counted) when the ring is full; capacity 0 disables recording entirely.
#[derive(Clone, Debug)]
pub struct WireTap {
    ring: VecDeque<WireRecord>,
    capacity: usize,
    seq: u64,
    dropped: u64,
    dropped_by_op: [u64; 5],
}

/// Default tap capacity (records, i.e. sends + receives).
pub const DEFAULT_TAP_CAPACITY: usize = 4096;

impl Default for WireTap {
    fn default() -> Self {
        WireTap::new(DEFAULT_TAP_CAPACITY)
    }
}

impl WireTap {
    /// Create a tap retaining at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        WireTap {
            ring: VecDeque::new(),
            capacity,
            seq: 0,
            dropped: 0,
            dropped_by_op: [0; 5],
        }
    }

    /// Append one record (stamping its sequence number).
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        dir: WireDir,
        op: WireOp,
        ds: u32,
        index: u64,
        bytes: u64,
        ok: bool,
        ctx: TraceContext,
    ) {
        let seq = self.seq;
        self.seq += 1;
        if self.capacity == 0 {
            self.dropped += 1;
            self.dropped_by_op[op.idx()] += 1;
            return;
        }
        if self.ring.len() >= self.capacity {
            if let Some(evicted) = self.ring.pop_front() {
                self.dropped_by_op[evicted.op.idx()] += 1;
            }
            self.dropped += 1;
        }
        self.ring.push_back(WireRecord {
            seq,
            dir,
            op,
            ds,
            index,
            bytes,
            ok,
            ctx,
        });
    }

    /// Retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &WireRecord> {
        self.ring.iter()
    }

    /// Total records ever taken (including dropped ones).
    pub fn total(&self) -> u64 {
        self.seq
    }

    /// Records dropped because the ring was full (or capacity was 0).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drops attributed to one operation (the evicted record's op for
    /// ring overflow, the incoming record's op when capacity is 0).
    pub fn dropped_of(&self, op: WireOp) -> u64 {
        self.dropped_by_op[op.idx()]
    }

    /// Per-op drop counters, indexed as [`WireOp::ALL`].
    pub fn dropped_by_op(&self) -> [u64; 5] {
        self.dropped_by_op
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no records are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_bounds_and_counts_drops() {
        let mut tap = WireTap::new(2);
        for i in 0..5u64 {
            tap.record(
                WireDir::Send,
                WireOp::Fetch,
                1,
                i,
                0,
                true,
                TraceContext::NONE,
            );
        }
        assert_eq!(tap.len(), 2);
        assert_eq!(tap.dropped(), 3);
        assert_eq!(tap.total(), 5);
        assert_eq!(tap.dropped_of(WireOp::Fetch), 3);
        assert_eq!(tap.dropped_of(WireOp::Put), 0);
        let seqs: Vec<u64> = tap.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![3, 4], "oldest dropped first");
    }

    #[test]
    fn per_op_drop_attribution_follows_the_evicted_record() {
        let mut tap = WireTap::new(1);
        tap.record(
            WireDir::Send,
            WireOp::Put,
            1,
            0,
            64,
            true,
            TraceContext::NONE,
        );
        tap.record(
            WireDir::Send,
            WireOp::Fetch,
            1,
            1,
            0,
            true,
            TraceContext::NONE,
        );
        // The Put was evicted to admit the Fetch: the drop is a Put drop.
        assert_eq!(tap.dropped(), 1);
        assert_eq!(tap.dropped_of(WireOp::Put), 1);
        assert_eq!(tap.dropped_of(WireOp::Fetch), 0);
    }

    #[test]
    fn zero_capacity_disables_retention_but_still_counts() {
        let mut tap = WireTap::new(0);
        tap.record(
            WireDir::Recv,
            WireOp::Put,
            0,
            0,
            64,
            true,
            TraceContext::NONE,
        );
        assert!(tap.is_empty());
        assert_eq!(tap.total(), 1);
        assert_eq!(tap.dropped(), 1);
        assert_eq!(tap.dropped_of(WireOp::Put), 1);
    }

    #[test]
    fn context_identity() {
        assert!(!TraceContext::NONE.is_traced());
        assert!(TraceContext { trace: 3, span: 0 }.is_traced());
    }
}
