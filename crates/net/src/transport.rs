//! Transport abstraction between the CaRDS runtime and the remote memory
//! server, plus the in-process simulated implementation.

use std::collections::HashMap;
use std::fmt;

use crate::model::NetworkModel;
use crate::stats::NetStats;
use crate::wiretap::{TraceContext, WireDir, WireOp, WireTap};

/// Key identifying one far-memory object: (data-structure id, object index).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjKey {
    /// Data-structure id assigned by the runtime.
    pub ds: u32,
    /// Object index within the DS's virtual range.
    pub index: u64,
}

/// Transport-level failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetError {
    /// The server has no bytes for this key (never evicted there).
    NotFound(ObjKey),
    /// Transient fault (injected or simulated loss); the caller may retry.
    Transient,
    /// The operation timed out (partition or server-down window); the caller
    /// may retry — the link itself is still up.
    Timeout,
    /// The fetched envelope failed checksum/shape verification (torn read or
    /// in-flight bit flip); the caller may retry.
    Corrupt,
    /// The remote side is gone (channel closed). Terminal: retrying cannot
    /// help.
    Disconnected,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::NotFound(k) => {
                write!(f, "object ds{}:{} not on remote server", k.ds, k.index)
            }
            NetError::Transient => write!(f, "transient network fault"),
            NetError::Timeout => write!(f, "remote operation timed out"),
            NetError::Corrupt => write!(f, "fetched object failed verification"),
            NetError::Disconnected => write!(f, "remote server disconnected"),
        }
    }
}

impl std::error::Error for NetError {}

/// Fault-handling events a transport accumulated since the last drain:
/// failovers it initiated, hedges it sent, fences it bounced off. The
/// runtime drains these after each operation to attribute them to spans
/// ([`SpanKind::Failover`]/[`SpanKind::Hedge`] in `cards-runtime`) and
/// stats. Counts are per-client (this transport's own actions), not the
/// cluster-wide totals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultEvents {
    /// Takeovers this client performed (backup promoted to primary).
    pub failovers: u64,
    /// Hedged fetches this client sent to a backup.
    pub hedged: u64,
    /// Hedges where the primary answered first anyway.
    pub hedge_wasted: u64,
    /// Writes bounced by a fencing epoch and retried.
    pub fenced: u64,
    /// Train departures that found the request window already over its
    /// configured bound (back-pressure stalls on an outstanding train).
    pub queue_buildup: u64,
    /// Train departures that observed the primary→backup journal lag over
    /// the configured `max_ship_lag` (replication falling behind).
    pub lag_breach: u64,
}

impl FaultEvents {
    /// True when nothing happened since the last drain.
    pub fn is_empty(&self) -> bool {
        *self == FaultEvents::default()
    }

    /// Accumulate another batch of events.
    pub fn merge(&mut self, other: &FaultEvents) {
        self.failovers += other.failovers;
        self.hedged += other.hedged;
        self.hedge_wasted += other.hedge_wasted;
        self.fenced += other.fenced;
        self.queue_buildup += other.queue_buildup;
        self.lag_breach += other.lag_breach;
    }
}

/// Result of a successful fetch: payload plus modeled cycle cost.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fetched {
    /// Object bytes (length = object size registered at eviction time).
    pub bytes: Vec<u8>,
    /// Modeled cycles the fetch cost.
    pub cycles: u64,
}

/// A link to the remote memory server.
///
/// All methods are synchronous; costs are *returned* as modeled cycles so
/// the single caller (the runtime) can account them on its own clock.
pub trait Transport {
    /// Fetch the object stored under `key`.
    fn fetch(&mut self, key: ObjKey) -> Result<Fetched, NetError>;

    /// Fetch as part of a batch whose link latency is overlapped with an
    /// in-flight demand fetch: only wire serialization + marshalling cycles
    /// are charged. Used by prefetchers.
    fn fetch_batched(&mut self, key: ObjKey) -> Result<Fetched, NetError> {
        self.fetch(key)
    }

    /// Cycles wasted by one failed round trip (used to price retries after
    /// transient faults).
    fn rtt_cost(&self) -> u64;

    /// Store (evict) `data` under `key`, overwriting any prior contents.
    /// Returns modeled cycles.
    fn put(&mut self, key: ObjKey, data: &[u8]) -> Result<u64, NetError>;

    /// Drop the object under `key` (freed by the application). Returns
    /// modeled cycles.
    fn remove(&mut self, key: ObjKey) -> Result<u64, NetError>;

    /// Acknowledge all puts since the last flush, making them durable across
    /// a server crash/restart. Transports without crash semantics acknowledge
    /// implicitly and report zero cost. Returns modeled cycles.
    fn flush(&mut self) -> Result<u64, NetError> {
        Ok(0)
    }

    /// Server incarnation number. Bumps on every crash/restart; transports
    /// that never crash stay at 0. The runtime compares this across
    /// operations to detect restarts and trigger journal replay.
    fn generation(&self) -> u64 {
        0
    }

    /// Whether the server currently holds `key`.
    fn contains(&self, key: ObjKey) -> bool;

    /// Accumulated traffic statistics.
    fn stats(&self) -> NetStats;

    /// Total bytes currently resident on the remote server.
    fn remote_bytes(&self) -> u64;

    /// Drain fault-handling events (failovers, hedges, fence bounces)
    /// accumulated since the last call. Transports without replication
    /// report nothing.
    fn take_fault_events(&mut self) -> FaultEvents {
        FaultEvents::default()
    }

    /// Set the causal context stamped on subsequent operations (envelopes
    /// and wire-tap records). Transports without tracing ignore it.
    fn set_trace_context(&mut self, _ctx: TraceContext) {}

    /// The causal context currently in force.
    fn trace_context(&self) -> TraceContext {
        TraceContext::NONE
    }

    /// The wire tap recording every send/recv at the client edge, if this
    /// transport keeps one.
    fn wire_tap(&self) -> Option<&WireTap> {
        None
    }
}

/// In-process simulated transport: a hash map "server" plus the cycle model.
/// Deterministic and allocation-conscious (payloads move, not copy, on put).
pub struct SimTransport {
    model: NetworkModel,
    store: HashMap<ObjKey, Vec<u8>>,
    stats: NetStats,
    resident_bytes: u64,
    ctx: TraceContext,
    tap: WireTap,
}

impl SimTransport {
    /// Create a transport with the given cost model.
    pub fn new(model: NetworkModel) -> Self {
        SimTransport {
            model,
            store: HashMap::new(),
            stats: NetStats::default(),
            resident_bytes: 0,
            ctx: TraceContext::NONE,
            tap: WireTap::default(),
        }
    }

    /// The cost model in use.
    pub fn model(&self) -> &NetworkModel {
        &self.model
    }

    /// Number of objects resident on the server.
    pub fn object_count(&self) -> usize {
        self.store.len()
    }
}

impl Default for SimTransport {
    fn default() -> Self {
        Self::new(NetworkModel::default())
    }
}

impl SimTransport {
    fn fetch_inner(&mut self, key: ObjKey, op: WireOp) -> Result<Fetched, NetError> {
        self.tap
            .record(WireDir::Send, op, key.ds, key.index, 0, true, self.ctx);
        match self.store.get(&key) {
            Some(data) => {
                let cycles = match op {
                    WireOp::FetchBatched => {
                        self.model.per_msg_cpu + self.model.wire_cycles(data.len() as u64)
                    }
                    _ => self.model.fetch_cost(data.len() as u64),
                };
                self.stats.fetches += 1;
                self.stats.bytes_fetched += data.len() as u64;
                self.stats.cycles += cycles;
                let bytes = data.clone();
                self.tap.record(
                    WireDir::Recv,
                    op,
                    key.ds,
                    key.index,
                    bytes.len() as u64,
                    true,
                    self.ctx,
                );
                Ok(Fetched { bytes, cycles })
            }
            None => {
                self.tap
                    .record(WireDir::Recv, op, key.ds, key.index, 0, false, self.ctx);
                Err(NetError::NotFound(key))
            }
        }
    }
}

impl Transport for SimTransport {
    fn fetch(&mut self, key: ObjKey) -> Result<Fetched, NetError> {
        self.fetch_inner(key, WireOp::Fetch)
    }

    fn fetch_batched(&mut self, key: ObjKey) -> Result<Fetched, NetError> {
        self.fetch_inner(key, WireOp::FetchBatched)
    }

    fn rtt_cost(&self) -> u64 {
        self.model.base_latency + self.model.per_msg_cpu
    }

    fn put(&mut self, key: ObjKey, data: &[u8]) -> Result<u64, NetError> {
        self.tap.record(
            WireDir::Send,
            WireOp::Put,
            key.ds,
            key.index,
            data.len() as u64,
            true,
            self.ctx,
        );
        let cycles = self.model.writeback_cost(data.len() as u64);
        self.stats.writebacks += 1;
        self.stats.bytes_written += data.len() as u64;
        self.stats.cycles += cycles;
        if let Some(old) = self.store.insert(key, data.to_vec()) {
            self.resident_bytes -= old.len() as u64;
        }
        self.resident_bytes += data.len() as u64;
        self.tap.record(
            WireDir::Recv,
            WireOp::Put,
            key.ds,
            key.index,
            0,
            true,
            self.ctx,
        );
        Ok(cycles)
    }

    fn remove(&mut self, key: ObjKey) -> Result<u64, NetError> {
        self.tap.record(
            WireDir::Send,
            WireOp::Remove,
            key.ds,
            key.index,
            0,
            true,
            self.ctx,
        );
        if let Some(old) = self.store.remove(&key) {
            self.resident_bytes -= old.len() as u64;
        }
        // Frees piggyback on other traffic; charge one message's CPU cost.
        self.stats.cycles += self.model.per_msg_cpu;
        self.tap.record(
            WireDir::Recv,
            WireOp::Remove,
            key.ds,
            key.index,
            0,
            true,
            self.ctx,
        );
        Ok(self.model.per_msg_cpu)
    }

    fn contains(&self, key: ObjKey) -> bool {
        self.store.contains_key(&key)
    }

    fn stats(&self) -> NetStats {
        self.stats
    }

    fn remote_bytes(&self) -> u64 {
        self.resident_bytes
    }

    fn set_trace_context(&mut self, ctx: TraceContext) {
        self.ctx = ctx;
    }

    fn trace_context(&self) -> TraceContext {
        self.ctx
    }

    fn wire_tap(&self) -> Option<&WireTap> {
        Some(&self.tap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(ds: u32, index: u64) -> ObjKey {
        ObjKey { ds, index }
    }

    #[test]
    fn put_then_fetch_round_trips() {
        let mut t = SimTransport::default();
        let data = vec![7u8; 4096];
        t.put(key(1, 0), &data).unwrap();
        let f = t.fetch(key(1, 0)).unwrap();
        assert_eq!(f.bytes, data);
        assert!(f.cycles > 40_000);
    }

    #[test]
    fn fetch_missing_is_not_found() {
        let mut t = SimTransport::default();
        assert_eq!(t.fetch(key(2, 9)), Err(NetError::NotFound(key(2, 9))));
    }

    #[test]
    fn stats_accumulate() {
        let mut t = SimTransport::default();
        t.put(key(0, 0), &[1, 2, 3]).unwrap();
        t.put(key(0, 1), &[4; 100]).unwrap();
        t.fetch(key(0, 0)).unwrap();
        let s = t.stats();
        assert_eq!(s.writebacks, 2);
        assert_eq!(s.fetches, 1);
        assert_eq!(s.bytes_written, 103);
        assert_eq!(s.bytes_fetched, 3);
        assert!(s.cycles > 0);
    }

    #[test]
    fn resident_bytes_tracked_through_overwrite_and_remove() {
        let mut t = SimTransport::default();
        t.put(key(0, 0), &[0u8; 128]).unwrap();
        assert_eq!(t.remote_bytes(), 128);
        t.put(key(0, 0), &[0u8; 64]).unwrap(); // overwrite shrinks
        assert_eq!(t.remote_bytes(), 64);
        t.put(key(0, 1), &[0u8; 32]).unwrap();
        assert_eq!(t.remote_bytes(), 96);
        t.remove(key(0, 0)).unwrap();
        assert_eq!(t.remote_bytes(), 32);
        assert_eq!(t.object_count(), 1);
    }

    #[test]
    fn remove_missing_is_ok() {
        let mut t = SimTransport::default();
        assert!(t.remove(key(9, 9)).is_ok());
    }

    #[test]
    fn remove_cost_lands_in_stats_cycles() {
        let mut t = SimTransport::default();
        t.put(key(0, 0), &[1u8; 64]).unwrap();
        let before = t.stats().cycles;
        let cost = t.remove(key(0, 0)).unwrap();
        assert!(cost > 0);
        assert_eq!(t.stats().cycles, before + cost);
    }

    #[test]
    fn default_flush_and_generation_are_inert() {
        let mut t = SimTransport::default();
        assert_eq!(t.flush(), Ok(0));
        assert_eq!(t.generation(), 0);
    }

    #[test]
    fn wire_tap_records_send_and_recv_with_context() {
        let mut t = SimTransport::default();
        let ctx = TraceContext { trace: 9, span: 1 };
        t.set_trace_context(ctx);
        assert_eq!(t.trace_context(), ctx);
        t.put(key(1, 4), &[7u8; 64]).unwrap();
        t.fetch(key(1, 4)).unwrap();
        assert_eq!(t.fetch(key(1, 5)), Err(NetError::NotFound(key(1, 5))));
        let recs: Vec<_> = t.wire_tap().unwrap().records().cloned().collect();
        assert_eq!(recs.len(), 6, "send+recv per operation");
        assert!(recs.iter().all(|r| r.ctx == ctx));
        assert_eq!(recs[0].dir, WireDir::Send);
        assert_eq!(recs[0].op, WireOp::Put);
        assert_eq!(recs[0].bytes, 64);
        assert_eq!(recs[3].dir, WireDir::Recv);
        assert_eq!(recs[3].op, WireOp::Fetch);
        assert_eq!(recs[3].bytes, 64);
        assert!(recs[3].ok);
        assert!(!recs[5].ok, "failed fetch records a failed recv");
        let seqs: Vec<u64> = recs.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4, 5]);
    }
}
