//! Small deterministic PRNG (SplitMix64 core, xorshift-style mixing) so the
//! workspace carries no external `rand` dependency and builds fully offline.
//!
//! Quality is ample for fault injection and policy shuffles: SplitMix64
//! passes BigCrush as a 64-bit generator and is the standard seeder for
//! xoshiro-family generators. All consumers in this workspace need only
//! reproducibility-per-seed, not cryptographic strength.

/// SplitMix64 generator: one u64 of state, one output per step.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1): the top 53 bits scaled by 2^-53.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in [0, bound) via Lemire's multiply-shift reduction
    /// (bias is negligible for the bounds used here; determinism is what
    /// matters).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let av: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(99);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        // With 10k draws the extremes should approach the interval ends.
        assert!(lo < 0.01 && hi > 0.99, "lo={lo} hi={hi}");
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.next_below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn shuffle_is_seeded_permutation() {
        let mut a: Vec<u32> = (0..32).collect();
        let mut b = a.clone();
        SplitMix64::new(5).shuffle(&mut a);
        SplitMix64::new(5).shuffle(&mut b);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        let mut c: Vec<u32> = (0..32).collect();
        SplitMix64::new(6).shuffle(&mut c);
        assert_ne!(a, c, "different seed gives different permutation");
    }

    #[test]
    fn matches_reference_vector() {
        // Reference values for seed 0 from the canonical SplitMix64
        // (Steele, Lea & Flood; same constants as java.util.SplittableRandom).
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xe220a8397b1dcdaf);
        assert_eq!(r.next_u64(), 0x6e789e6aa1b965f4);
    }
}
