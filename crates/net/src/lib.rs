//! # cards-net
//!
//! Simulated far-memory interconnect for the CaRDS reproduction.
//!
//! The paper runs over a 25 Gb/s ConnectX-4 NIC with DPDK between two
//! CloudLab machines. This crate substitutes a deterministic cycle-cost
//! model ([`NetworkModel`], calibrated against the paper's Table 1) plus a
//! remote memory server reachable through the [`Transport`] trait:
//!
//! - [`SimTransport`] — in-process hash-map server; deterministic, used by
//!   all benchmarks and figure reproductions.
//! - [`ThreadedTransport`] — the same server on its own OS thread behind
//!   bounded std channels (the "two machines" configuration), used in tests
//!   that exercise a real cross-thread path.
//! - [`FaultyTransport`] — deterministic fault injection for failure tests.
//! - [`ChaosTransport`] — a server driven through a deterministic schedule
//!   of failure phases (loss bursts, latency spikes, partitions, payload
//!   corruption, crash/restart) storing checksummed [`envelope`]s.
//! - [`ShardedServer`]/[`ShardedClient`] — N shard replica sets behind one
//!   transport facade serving many concurrent worker VMs, with fetch
//!   coalescing, batched windowed writeback trains, primary→backup journal
//!   shipping, epoch-fenced failover and hedged reads ([`replica`]).

pub mod chaos;
pub mod envelope;
pub mod fault;
pub mod fleet;
pub mod model;
pub mod prng;
pub mod replica;
pub mod sharded;
pub mod stats;
pub mod threaded;
pub mod transport;
pub mod wiretap;

pub use chaos::{ChaosPhase, ChaosSchedule, ChaosStats, ChaosTransport, ScheduledPhase};
pub use fault::FaultyTransport;
pub use fleet::{
    DepthHist, FailoverIncident, FleetEvent, FleetEventLog, FleetEventSummary, ServerSpan,
    ServerSpanKind, ServerSpanLog, ShardEvents, ShardGauges, INCIDENT_PHASES,
};
pub use model::NetworkModel;
pub use prng::SplitMix64;
pub use replica::ReplicaConfig;
pub use sharded::{ShardedClient, ShardedConfig, ShardedServer, ShardedStats, StallGuard};
pub use stats::NetStats;
pub use threaded::ThreadedTransport;
pub use transport::{FaultEvents, Fetched, NetError, ObjKey, SimTransport, Transport};
pub use wiretap::{TraceContext, WireDir, WireOp, WireRecord, WireTap};
