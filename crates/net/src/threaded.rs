//! A transport whose server runs on its own OS thread — the "two machines"
//! configuration. Requests/responses travel over bounded std channels, which
//! play the role of the RDMA link; cycle costs still come from the model
//! so results are identical to [`crate::transport::SimTransport`].
//!
//! This exists to exercise a real cross-thread memory-server path (channel
//! backpressure, shutdown, poisoning) rather than for performance.

use std::collections::HashMap;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;

use crate::model::NetworkModel;
use crate::stats::NetStats;
use crate::transport::{Fetched, NetError, ObjKey, Transport};
use crate::wiretap::{TraceContext, WireDir, WireOp, WireTap};

enum Request {
    Fetch(ObjKey),
    Put(ObjKey, Vec<u8>),
    Remove(ObjKey),
    Contains(ObjKey),
    ResidentBytes,
    Shutdown,
}

enum Response {
    Data(Option<Vec<u8>>),
    Ok,
    Bool(bool),
    Bytes(u64),
}

/// Client half of the threaded transport. Dropping it shuts the server down.
pub struct ThreadedTransport {
    tx: SyncSender<Request>,
    rx: Receiver<Response>,
    model: NetworkModel,
    stats: NetStats,
    handle: Option<JoinHandle<()>>,
    /// Trace context and wire tap live on the client side so recording is
    /// sequenced by the (single) caller, keeping it deterministic and
    /// byte-identical with `SimTransport` under the same workload.
    ctx: TraceContext,
    tap: WireTap,
}

impl ThreadedTransport {
    /// Spawn the memory-server thread and connect to it.
    pub fn spawn(model: NetworkModel) -> Self {
        let (req_tx, req_rx) = sync_channel::<Request>(64);
        let (resp_tx, resp_rx) = sync_channel::<Response>(64);
        let handle = std::thread::Builder::new()
            .name("cards-remote-mem".into())
            .spawn(move || server_loop(req_rx, resp_tx))
            .expect("spawn remote memory server");
        ThreadedTransport {
            tx: req_tx,
            rx: resp_rx,
            model,
            stats: NetStats::default(),
            handle: Some(handle),
            ctx: TraceContext::NONE,
            tap: WireTap::default(),
        }
    }

    fn call(&self, req: Request) -> Result<Response, NetError> {
        self.tx.send(req).map_err(|_| NetError::Disconnected)?;
        self.rx.recv().map_err(|_| NetError::Disconnected)
    }

    /// Kill the server thread, as if the remote machine died mid-run. The
    /// worker exits its loop without replying; every subsequent operation
    /// (and any operation already in flight) surfaces
    /// [`NetError::Disconnected`] instead of hanging.
    pub fn kill_server(&mut self) {
        let _ = self.tx.send(Request::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn server_loop(rx: Receiver<Request>, tx: SyncSender<Response>) {
    let mut store: HashMap<ObjKey, Vec<u8>> = HashMap::new();
    let mut resident = 0u64;
    while let Ok(req) = rx.recv() {
        let resp = match req {
            Request::Fetch(k) => Response::Data(store.get(&k).cloned()),
            Request::Put(k, data) => {
                resident += data.len() as u64;
                if let Some(old) = store.insert(k, data) {
                    resident -= old.len() as u64;
                }
                Response::Ok
            }
            Request::Remove(k) => {
                if let Some(old) = store.remove(&k) {
                    resident -= old.len() as u64;
                }
                Response::Ok
            }
            Request::Contains(k) => Response::Bool(store.contains_key(&k)),
            Request::ResidentBytes => Response::Bytes(resident),
            Request::Shutdown => break,
        };
        if tx.send(resp).is_err() {
            break;
        }
    }
}

impl ThreadedTransport {
    fn fetch_inner(&mut self, key: ObjKey, op: WireOp) -> Result<Fetched, NetError> {
        self.tap
            .record(WireDir::Send, op, key.ds, key.index, 0, true, self.ctx);
        let r = self.call(Request::Fetch(key));
        match r {
            Ok(Response::Data(Some(bytes))) => {
                let cycles = match op {
                    WireOp::FetchBatched => {
                        self.model.per_msg_cpu + self.model.wire_cycles(bytes.len() as u64)
                    }
                    _ => self.model.fetch_cost(bytes.len() as u64),
                };
                self.stats.fetches += 1;
                self.stats.bytes_fetched += bytes.len() as u64;
                self.stats.cycles += cycles;
                self.tap.record(
                    WireDir::Recv,
                    op,
                    key.ds,
                    key.index,
                    bytes.len() as u64,
                    true,
                    self.ctx,
                );
                Ok(Fetched { bytes, cycles })
            }
            Ok(Response::Data(None)) => {
                self.tap
                    .record(WireDir::Recv, op, key.ds, key.index, 0, false, self.ctx);
                Err(NetError::NotFound(key))
            }
            _ => {
                self.tap
                    .record(WireDir::Recv, op, key.ds, key.index, 0, false, self.ctx);
                Err(NetError::Disconnected)
            }
        }
    }
}

impl Transport for ThreadedTransport {
    fn fetch(&mut self, key: ObjKey) -> Result<Fetched, NetError> {
        self.fetch_inner(key, WireOp::Fetch)
    }

    fn fetch_batched(&mut self, key: ObjKey) -> Result<Fetched, NetError> {
        self.fetch_inner(key, WireOp::FetchBatched)
    }

    fn rtt_cost(&self) -> u64 {
        self.model.base_latency + self.model.per_msg_cpu
    }

    fn put(&mut self, key: ObjKey, data: &[u8]) -> Result<u64, NetError> {
        self.tap.record(
            WireDir::Send,
            WireOp::Put,
            key.ds,
            key.index,
            data.len() as u64,
            true,
            self.ctx,
        );
        let cycles = self.model.writeback_cost(data.len() as u64);
        let r = self.call(Request::Put(key, data.to_vec()));
        match r {
            Ok(Response::Ok) => {
                self.stats.writebacks += 1;
                self.stats.bytes_written += data.len() as u64;
                self.stats.cycles += cycles;
                self.tap.record(
                    WireDir::Recv,
                    WireOp::Put,
                    key.ds,
                    key.index,
                    0,
                    true,
                    self.ctx,
                );
                Ok(cycles)
            }
            _ => {
                self.tap.record(
                    WireDir::Recv,
                    WireOp::Put,
                    key.ds,
                    key.index,
                    0,
                    false,
                    self.ctx,
                );
                Err(NetError::Disconnected)
            }
        }
    }

    fn remove(&mut self, key: ObjKey) -> Result<u64, NetError> {
        self.tap.record(
            WireDir::Send,
            WireOp::Remove,
            key.ds,
            key.index,
            0,
            true,
            self.ctx,
        );
        let r = self.call(Request::Remove(key));
        match r {
            Ok(Response::Ok) => {
                // Same accounting as SimTransport: the free's CPU cost lands
                // in the traffic stats, not just the return value.
                self.stats.cycles += self.model.per_msg_cpu;
                self.tap.record(
                    WireDir::Recv,
                    WireOp::Remove,
                    key.ds,
                    key.index,
                    0,
                    true,
                    self.ctx,
                );
                Ok(self.model.per_msg_cpu)
            }
            _ => {
                self.tap.record(
                    WireDir::Recv,
                    WireOp::Remove,
                    key.ds,
                    key.index,
                    0,
                    false,
                    self.ctx,
                );
                Err(NetError::Disconnected)
            }
        }
    }

    fn contains(&self, key: ObjKey) -> bool {
        matches!(self.call(Request::Contains(key)), Ok(Response::Bool(true)))
    }

    fn stats(&self) -> NetStats {
        self.stats
    }

    fn remote_bytes(&self) -> u64 {
        match self.call(Request::ResidentBytes) {
            Ok(Response::Bytes(b)) => b,
            _ => 0,
        }
    }

    fn set_trace_context(&mut self, ctx: TraceContext) {
        self.ctx = ctx;
    }

    fn trace_context(&self) -> TraceContext {
        self.ctx
    }

    fn wire_tap(&self) -> Option<&WireTap> {
        Some(&self.tap)
    }
}

impl Drop for ThreadedTransport {
    fn drop(&mut self) {
        let _ = self.tx.send(Request::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threaded_round_trip() {
        let mut t = ThreadedTransport::spawn(NetworkModel::default());
        let k = ObjKey { ds: 3, index: 11 };
        t.put(k, &[5u8; 256]).unwrap();
        assert!(t.contains(k));
        let f = t.fetch(k).unwrap();
        assert_eq!(f.bytes, vec![5u8; 256]);
        assert_eq!(t.remote_bytes(), 256);
        t.remove(k).unwrap();
        assert!(!t.contains(k));
    }

    #[test]
    fn threaded_matches_sim_costs() {
        use crate::transport::SimTransport;
        let model = NetworkModel::default();
        let mut a = ThreadedTransport::spawn(model);
        let mut b = SimTransport::new(model);
        let k = ObjKey { ds: 0, index: 0 };
        let data = vec![1u8; 4096];
        let ca = a.put(k, &data).unwrap();
        let cb = b.put(k, &data).unwrap();
        assert_eq!(ca, cb);
        assert_eq!(a.fetch(k).unwrap().cycles, b.fetch(k).unwrap().cycles);
    }

    #[test]
    fn shutdown_on_drop_is_clean() {
        let t = ThreadedTransport::spawn(NetworkModel::free());
        drop(t); // must not hang or panic
    }

    #[test]
    fn worker_death_surfaces_disconnected_not_hang() {
        let mut t = ThreadedTransport::spawn(NetworkModel::default());
        let k = ObjKey { ds: 1, index: 0 };
        t.put(k, &[7u8; 64]).unwrap();
        t.kill_server();
        assert_eq!(t.fetch(k), Err(NetError::Disconnected));
        assert_eq!(t.put(k, &[1]), Err(NetError::Disconnected));
        assert_eq!(t.remove(k), Err(NetError::Disconnected));
        assert!(!t.contains(k));
        assert_eq!(t.remote_bytes(), 0);
    }

    #[test]
    fn worker_death_is_deterministic_across_repeats() {
        // The failure mode must not depend on scheduling: every repeat sees
        // the same error on the first post-death operation.
        for _ in 0..16 {
            let mut t = ThreadedTransport::spawn(NetworkModel::free());
            t.kill_server();
            assert_eq!(
                t.fetch(ObjKey { ds: 0, index: 0 }),
                Err(NetError::Disconnected)
            );
        }
    }

    #[test]
    fn drop_after_worker_death_is_clean() {
        let mut t = ThreadedTransport::spawn(NetworkModel::free());
        t.kill_server();
        drop(t); // Drop must tolerate the already-dead server
    }

    #[test]
    fn wire_tap_matches_sim_record_for_record() {
        use crate::transport::SimTransport;
        let model = NetworkModel::default();
        let mut a = ThreadedTransport::spawn(model);
        let mut b = SimTransport::new(model);
        let ctx = TraceContext { trace: 4, span: 2 };
        for t in [&mut a as &mut dyn Transport, &mut b as &mut dyn Transport] {
            t.set_trace_context(ctx);
            let k = ObjKey { ds: 2, index: 7 };
            t.put(k, &[3u8; 128]).unwrap();
            t.fetch(k).unwrap();
            let _ = t.fetch(ObjKey { ds: 2, index: 8 });
            t.remove(k).unwrap();
        }
        let ta: Vec<_> = a.wire_tap().unwrap().records().cloned().collect();
        let tb: Vec<_> = b.wire_tap().unwrap().records().cloned().collect();
        assert_eq!(ta, tb, "taps must be byte-identical across transports");
        assert!(ta.iter().all(|r| r.ctx == ctx));
    }

    #[test]
    fn remove_accounting_matches_sim() {
        use crate::transport::SimTransport;
        let model = NetworkModel::default();
        let mut a = ThreadedTransport::spawn(model);
        let mut b = SimTransport::new(model);
        let k = ObjKey { ds: 0, index: 0 };
        a.put(k, &[2u8; 32]).unwrap();
        b.put(k, &[2u8; 32]).unwrap();
        a.remove(k).unwrap();
        b.remove(k).unwrap();
        assert_eq!(a.stats(), b.stats());
    }
}
