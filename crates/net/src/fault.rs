//! Fault-injecting transport wrapper for failure testing.
//!
//! Wraps any [`Transport`] and makes `fetch`/`put`/`remove`/`flush` fail
//! transiently with a configured probability (seeded, deterministic). The
//! CaRDS runtime must retry transient faults and remain correct —
//! integration tests drive this.

use crate::prng::SplitMix64;
use crate::stats::NetStats;
use crate::transport::{Fetched, NetError, ObjKey, Transport};
use crate::wiretap::{TraceContext, WireTap};

/// Deterministic fault injector around an inner transport.
pub struct FaultyTransport<T: Transport> {
    inner: T,
    rng: SplitMix64,
    /// Probability in [0,1] that an operation fails with `Transient`.
    fault_rate: f64,
    /// Faults injected so far.
    pub injected: u64,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wrap `inner`, failing operations with probability `fault_rate`,
    /// deterministically derived from `seed`.
    pub fn new(inner: T, fault_rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&fault_rate), "fault_rate out of range");
        FaultyTransport {
            inner,
            rng: SplitMix64::new(seed),
            fault_rate,
            injected: 0,
        }
    }

    /// Access the wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    fn maybe_fault(&mut self) -> Result<(), NetError> {
        if self.fault_rate > 0.0 && self.rng.next_f64() < self.fault_rate {
            self.injected += 1;
            Err(NetError::Transient)
        } else {
            Ok(())
        }
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn fetch(&mut self, key: ObjKey) -> Result<Fetched, NetError> {
        self.maybe_fault()?;
        self.inner.fetch(key)
    }

    fn fetch_batched(&mut self, key: ObjKey) -> Result<Fetched, NetError> {
        self.maybe_fault()?;
        self.inner.fetch_batched(key)
    }

    fn rtt_cost(&self) -> u64 {
        self.inner.rtt_cost()
    }

    fn put(&mut self, key: ObjKey, data: &[u8]) -> Result<u64, NetError> {
        self.maybe_fault()?;
        self.inner.put(key, data)
    }

    fn remove(&mut self, key: ObjKey) -> Result<u64, NetError> {
        self.maybe_fault()?;
        self.inner.remove(key)
    }

    fn flush(&mut self) -> Result<u64, NetError> {
        self.maybe_fault()?;
        self.inner.flush()
    }

    fn generation(&self) -> u64 {
        self.inner.generation()
    }

    fn contains(&self, key: ObjKey) -> bool {
        self.inner.contains(key)
    }

    fn stats(&self) -> NetStats {
        self.inner.stats()
    }

    fn remote_bytes(&self) -> u64 {
        self.inner.remote_bytes()
    }

    fn set_trace_context(&mut self, ctx: TraceContext) {
        self.inner.set_trace_context(ctx);
    }

    fn trace_context(&self) -> TraceContext {
        self.inner.trace_context()
    }

    fn wire_tap(&self) -> Option<&WireTap> {
        self.inner.wire_tap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::SimTransport;

    #[test]
    fn zero_rate_never_faults() {
        let mut t = FaultyTransport::new(SimTransport::default(), 0.0, 1);
        for i in 0..100 {
            t.put(ObjKey { ds: 0, index: i }, &[1]).unwrap();
        }
        assert_eq!(t.injected, 0);
    }

    #[test]
    fn full_rate_always_faults() {
        let mut t = FaultyTransport::new(SimTransport::default(), 1.0, 1);
        assert_eq!(
            t.put(ObjKey { ds: 0, index: 0 }, &[1]),
            Err(NetError::Transient)
        );
        assert_eq!(t.injected, 1);
    }

    #[test]
    fn faults_are_deterministic_per_seed() {
        let run = |seed| {
            let mut t = FaultyTransport::new(SimTransport::default(), 0.3, seed);
            let mut pattern = Vec::new();
            for i in 0..50 {
                pattern.push(t.put(ObjKey { ds: 0, index: i }, &[0]).is_err());
            }
            pattern
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn remove_is_faultable() {
        let mut t = FaultyTransport::new(SimTransport::default(), 1.0, 3);
        assert_eq!(
            t.remove(ObjKey { ds: 0, index: 0 }),
            Err(NetError::Transient)
        );
        assert_eq!(t.injected, 1);
    }

    #[test]
    fn retry_eventually_succeeds() {
        let mut t = FaultyTransport::new(SimTransport::default(), 0.5, 7);
        let key = ObjKey { ds: 1, index: 1 };
        // retry loop as the runtime would do
        let mut tries = 0;
        loop {
            tries += 1;
            match t.put(key, &[9; 16]) {
                Ok(_) => break,
                Err(NetError::Transient) if tries < 64 => continue,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(t.contains(key));
    }
}
