//! Fleet observability plane: server-side span log, per-shard gauges,
//! failover incidents, and the shared replica-lifecycle event log.
//!
//! The serving tier of [`crate::sharded`] charges every client a fully
//! deterministic modeled cost per operation (see the determinism contract
//! in that module's docs). This module *decomposes* those charges into
//! server-side spans — queue wait, apply, wire transfer, writeback-train
//! flush, durability barrier — keyed by the [`TraceContext`] in force when
//! the client issued the operation, so a per-worker `Tracer` export can be
//! joined with the tier's own accounting into end-to-end timelines.
//!
//! ## Determinism contract
//!
//! Two kinds of truth live here, mirroring DESIGN.md §13:
//!
//! - [`ServerSpanLog`] (one per client) is **deterministic**: every span
//!   is an exact decomposition of the modeled charge the client assessed
//!   for its own operation, independent of which thread led a coalesced
//!   fetch or which replica won a hedge race. The log maintains the
//!   cross-sum invariant `remote_cycles == span cycles + residue`
//!   *exactly*, where `residue` is the modeled link latency (and
//!   read-your-writes buffer hits) that no server-side phase accounts
//!   for. On fault-free runs the log is byte-identical across replays.
//! - [`FleetEventLog`] (shared across clients and replica threads) is
//!   **interleaving-dependent**: coalesce joins (who piggybacked on whose
//!   fetch), hedge wins/wastes, journal ships, flush barriers, fence
//!   rejects and TakeOver handshake phases as they actually happened.
//!   Its contents are only ever exported under the strippable
//!   `"counters"` region of `cards-fleet-v1` documents.
//!
//! [`FailoverIncident`]s sit in between: they are recorded client-side on
//! the modeled clock and are empty on fault-free runs (so byte-identity
//! holds exactly where it is asserted), while under fault injection they
//! reconstruct the takeover timeline demote → fence bump → handshake →
//! drain → resume.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;

use crate::wiretap::TraceContext;

/// Which server-side phase a [`ServerSpan`] covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ServerSpanKind {
    /// Time spent queued at the shard. The cost model charges no queue
    /// wait, so these spans carry zero cycles but record the client's
    /// outstanding-train depth at issue time (the queue-depth gauge).
    Queue,
    /// Per-message CPU on the serving replica (demarshalling + store op).
    Apply,
    /// Wire serialization of the payload (bytes / bandwidth).
    Transfer,
    /// Writeback-train departure: one message CPU for the whole batch;
    /// `depth` is the train's member count.
    TrainFlush,
    /// Durability/replication barrier CPU at flush.
    Barrier,
}

impl ServerSpanKind {
    /// Every kind, in export order.
    pub const ALL: [ServerSpanKind; 5] = [
        ServerSpanKind::Queue,
        ServerSpanKind::Apply,
        ServerSpanKind::Transfer,
        ServerSpanKind::TrainFlush,
        ServerSpanKind::Barrier,
    ];

    /// Stable snake_case name for exports.
    pub fn name(&self) -> &'static str {
        match self {
            ServerSpanKind::Queue => "queue",
            ServerSpanKind::Apply => "apply",
            ServerSpanKind::Transfer => "transfer",
            ServerSpanKind::TrainFlush => "train_flush",
            ServerSpanKind::Barrier => "barrier",
        }
    }
}

/// One server-side span: a deterministic slice of the modeled charge one
/// client operation carried, keyed by the causal context that issued it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerSpan {
    /// Causal context in force when the client issued the operation
    /// (joins against the worker's `Tracer` trees on trace/span id).
    pub ctx: TraceContext,
    /// Shard that served (or buffered) the operation.
    pub shard: u32,
    /// Which server-side phase.
    pub kind: ServerSpanKind,
    /// Modeled cycles of this phase.
    pub cycles: u64,
    /// Payload bytes involved (transfers and train flushes).
    pub bytes: u64,
    /// Phase-specific depth: outstanding trains for `Queue`, member count
    /// for `TrainFlush`, 0 otherwise.
    pub depth: u64,
}

/// Log2 histogram with 16 buckets (value 0 → bucket 0, else
/// `min(15, floor(log2(v)) + 1)`), used for the per-shard queue-depth and
/// train-size distributions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DepthHist {
    /// Bucket counts.
    pub buckets: [u64; 16],
}

impl DepthHist {
    /// Record one observation.
    pub fn observe(&mut self, v: u64) {
        let b = if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(15)
        };
        self.buckets[b] += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Approximate quantile: lower bound of the bucket holding rank
    /// `q_permille/1000` (0 when empty).
    pub fn quantile(&self, q_permille: u64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = (q_permille * (total - 1)) / 1000;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if n > 0 && seen > rank {
                return if b == 0 { 0 } else { 1u64 << (b - 1) };
            }
        }
        0
    }

    /// Merge another histogram in.
    pub fn merge(&mut self, other: &DepthHist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

/// Deterministic per-shard gauges kept by each client's span log.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardGauges {
    /// Operations this client charged against the shard (wire fetches,
    /// buffered puts, removes, train departures).
    pub ops: u64,
    /// Server-side span cycles attributed to the shard.
    pub server_cycles: u64,
    /// Outstanding-train (request window) depth observed per operation.
    pub queue_depth: DepthHist,
    /// Writeback-train sizes at departure.
    pub train_size: DepthHist,
}

impl ShardGauges {
    /// Merge another shard's gauges (cross-worker aggregation).
    pub fn merge(&mut self, other: &ShardGauges) {
        self.ops += other.ops;
        self.server_cycles += other.server_cycles;
        self.queue_depth.merge(&other.queue_depth);
        self.train_size.merge(&other.train_size);
    }
}

/// One reconstructed epoch-fenced takeover, recorded by the client that
/// performed it on its own modeled clock. The phase sequence is fixed by
/// the handshake protocol (DESIGN.md §14): demote (suspect marked dead) →
/// fence bump → handshake (TakeOver sent) → drain (FIFO journal replayed
/// by ack time) → resume (active flipped, generation bumped).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FailoverIncident {
    /// Shard that failed over.
    pub shard: u32,
    /// Fencing epoch after the bump (old writes below this bounce).
    pub fence: u64,
    /// Replica demoted.
    pub from: u32,
    /// Replica promoted.
    pub to: u32,
    /// Client modeled clock (its `NetStats::cycles`) at detection.
    pub at_cycles: u64,
    /// Trace id in force when the failover ran (0 = untraced).
    pub trace: u64,
}

/// The canonical phase names of a takeover incident, in protocol order.
pub const INCIDENT_PHASES: [&str; 5] = ["demote", "fence_bump", "handshake", "drain", "resume"];

/// Bounded, deterministic (per client) server span log. At capacity the
/// overflowing span's cycles fold into `residue` — the cross-sum
/// invariant survives truncation exactly.
#[derive(Clone, Debug, Default)]
pub struct ServerSpanLog {
    spans: Vec<ServerSpan>,
    capacity: usize,
    dropped: u64,
    remote_cycles: u64,
    residue: u64,
    shards: BTreeMap<u32, ShardGauges>,
}

/// Default server-span-log capacity (spans retained per client).
pub const DEFAULT_SPAN_LOG_CAPACITY: usize = 1 << 16;

impl ServerSpanLog {
    /// Create a log retaining at most `capacity` spans.
    pub fn new(capacity: usize) -> Self {
        ServerSpanLog {
            capacity,
            ..ServerSpanLog::default()
        }
    }

    /// Account one modeled charge the client assessed (mirror of every
    /// `NetStats::cycles` increment).
    pub fn charge(&mut self, cycles: u64) {
        self.remote_cycles += cycles;
    }

    /// Account modeled cycles no server-side phase covers (link latency,
    /// read-your-writes buffer hits).
    pub fn add_residue(&mut self, cycles: u64) {
        self.residue += cycles;
    }

    /// Append one span; at capacity its cycles fold into the residue so
    /// the cross-sum stays exact.
    pub fn record(&mut self, span: ServerSpan) {
        if self.spans.len() >= self.capacity {
            self.dropped += 1;
            self.residue += span.cycles;
            return;
        }
        self.spans.push(span);
    }

    /// Deterministic per-shard gauges (created on first touch).
    pub fn gauges(&mut self, shard: u32) -> &mut ShardGauges {
        self.shards.entry(shard).or_default()
    }

    /// Retained spans, in issue order.
    pub fn spans(&self) -> &[ServerSpan] {
        &self.spans
    }

    /// Spans dropped at capacity (their cycles live in the residue).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total modeled cycles charged to this client by the tier.
    pub fn remote_cycles(&self) -> u64 {
        self.remote_cycles
    }

    /// Modeled cycles not attributed to any server-side span.
    pub fn residue(&self) -> u64 {
        self.residue
    }

    /// Per-shard gauge map.
    pub fn shards(&self) -> &BTreeMap<u32, ShardGauges> {
        &self.shards
    }

    /// Sum of retained span cycles.
    pub fn span_cycles(&self) -> u64 {
        self.spans.iter().map(|s| s.cycles).sum()
    }

    /// The cross-sum invariant: every charged cycle is either a server
    /// span or residue.
    pub fn check(&self) -> Result<(), String> {
        let sum = self.span_cycles() + self.residue;
        if sum != self.remote_cycles {
            return Err(format!(
                "server span log cross-sum: spans+residue {} != remote cycles {}",
                sum, self.remote_cycles
            ));
        }
        Ok(())
    }
}

/// One interleaving-dependent event observed by the tier as it actually
/// ran: replica lifecycle (journal ship, barrier, fence reject, takeover
/// phases) plus cross-client request outcomes (coalesce joins, hedge
/// wins/wastes). Exported only under the strippable counters region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FleetEvent {
    /// The active replica shipped one journal epoch to its standby.
    JournalShip {
        /// Shard shipping.
        shard: u32,
        /// Shipping replica.
        from: u32,
        /// Ship epoch (cumulative `shipped` after the send).
        epoch: u64,
    },
    /// A flush barrier completed on the serving replica.
    FlushBarrier {
        /// Shard flushed.
        shard: u32,
        /// Serving replica.
        replica: u32,
        /// Fence the flush carried.
        fence: u64,
    },
    /// A write bounced off the fencing epoch (or a deposed replica).
    FenceReject {
        /// Shard rejecting.
        shard: u32,
        /// Rejecting replica.
        replica: u32,
        /// Fence the write carried.
        stamped: u64,
    },
    /// A standby began the TakeOver handshake (request dequeued; by FIFO
    /// order its shipped journal is already drained).
    TakeOverDrained {
        /// Shard taken over.
        shard: u32,
        /// Promoted replica.
        replica: u32,
    },
    /// A fetch piggybacked on another client's in-flight wire transfer.
    CoalesceJoin {
        /// Shard of the coalesced key.
        shard: u32,
        /// Context of the leader whose transfer was joined.
        leader: TraceContext,
        /// Context of the follower that piggybacked.
        follower: TraceContext,
    },
    /// A hedged read was answered by the backup first.
    HedgeWin {
        /// Shard hedged.
        shard: u32,
        /// Replica that answered.
        from: u32,
    },
    /// A hedged read the primary answered first anyway (wasted).
    HedgeWaste {
        /// Shard hedged.
        shard: u32,
    },
}

impl FleetEvent {
    /// Stable snake_case name for exports.
    pub fn name(&self) -> &'static str {
        match self {
            FleetEvent::JournalShip { .. } => "journal_ship",
            FleetEvent::FlushBarrier { .. } => "flush_barrier",
            FleetEvent::FenceReject { .. } => "fence_reject",
            FleetEvent::TakeOverDrained { .. } => "takeover_drained",
            FleetEvent::CoalesceJoin { .. } => "coalesce_join",
            FleetEvent::HedgeWin { .. } => "hedge_win",
            FleetEvent::HedgeWaste { .. } => "hedge_waste",
        }
    }

    /// The shard the event concerns.
    pub fn shard(&self) -> u32 {
        match *self {
            FleetEvent::JournalShip { shard, .. }
            | FleetEvent::FlushBarrier { shard, .. }
            | FleetEvent::FenceReject { shard, .. }
            | FleetEvent::TakeOverDrained { shard, .. }
            | FleetEvent::CoalesceJoin { shard, .. }
            | FleetEvent::HedgeWin { shard, .. }
            | FleetEvent::HedgeWaste { shard } => shard,
        }
    }
}

struct FleetEventRing {
    ring: VecDeque<(u64, FleetEvent)>,
    seq: u64,
    dropped: u64,
}

/// Bounded shared ring of [`FleetEvent`]s, written by replica threads and
/// clients alike. A full ring drops the oldest event (counted), mirroring
/// the telemetry event-ring and [`crate::wiretap::WireTap`] accounting.
pub struct FleetEventLog {
    inner: Mutex<FleetEventRing>,
    capacity: usize,
}

/// Default fleet-event ring capacity.
pub const DEFAULT_EVENT_LOG_CAPACITY: usize = 4096;

impl Default for FleetEventLog {
    fn default() -> Self {
        FleetEventLog::new(DEFAULT_EVENT_LOG_CAPACITY)
    }
}

impl FleetEventLog {
    /// Create a ring retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        FleetEventLog {
            inner: Mutex::new(FleetEventRing {
                ring: VecDeque::new(),
                seq: 0,
                dropped: 0,
            }),
            capacity,
        }
    }

    /// Append one event (stamping its arrival sequence number).
    pub fn push(&self, ev: FleetEvent) {
        let mut g = self.inner.lock().expect("fleet event lock");
        let seq = g.seq;
        g.seq += 1;
        if self.capacity == 0 {
            g.dropped += 1;
            return;
        }
        if g.ring.len() >= self.capacity {
            g.ring.pop_front();
            g.dropped += 1;
        }
        g.ring.push_back((seq, ev));
    }

    /// Snapshot the retained events, oldest first.
    pub fn recent(&self) -> Vec<(u64, FleetEvent)> {
        self.inner
            .lock()
            .expect("fleet event lock")
            .ring
            .iter()
            .copied()
            .collect()
    }

    /// Aggregate retained events into per-shard per-kind counts.
    pub fn summary(&self) -> FleetEventSummary {
        let g = self.inner.lock().expect("fleet event lock");
        let mut per_shard: BTreeMap<u32, ShardEvents> = BTreeMap::new();
        for (_, ev) in &g.ring {
            let e = per_shard.entry(ev.shard()).or_default();
            match ev {
                FleetEvent::JournalShip { .. } => e.journal_ships += 1,
                FleetEvent::FlushBarrier { .. } => e.flush_barriers += 1,
                FleetEvent::FenceReject { .. } => e.fence_rejects += 1,
                FleetEvent::TakeOverDrained { .. } => e.takeover_drains += 1,
                FleetEvent::CoalesceJoin { .. } => e.coalesce_joins += 1,
                FleetEvent::HedgeWin { .. } => e.hedge_wins += 1,
                FleetEvent::HedgeWaste { .. } => e.hedge_wastes += 1,
            }
        }
        FleetEventSummary {
            total: g.seq,
            dropped: g.dropped,
            per_shard,
        }
    }
}

/// Per-shard event tallies (interleaving-dependent).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardEvents {
    /// Journal epochs shipped primary → backup.
    pub journal_ships: u64,
    /// Flush barriers completed.
    pub flush_barriers: u64,
    /// Writes bounced off the fencing epoch.
    pub fence_rejects: u64,
    /// TakeOver handshakes drained on a standby.
    pub takeover_drains: u64,
    /// Fetches that piggybacked on another client's transfer.
    pub coalesce_joins: u64,
    /// Hedged reads the backup won.
    pub hedge_wins: u64,
    /// Hedged reads the primary won anyway.
    pub hedge_wastes: u64,
}

/// Aggregated view of the event ring, carried in serving reports.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FleetEventSummary {
    /// Events ever pushed (including dropped ones).
    pub total: u64,
    /// Events dropped because the ring was full.
    pub dropped: u64,
    /// Per-shard per-kind tallies over the retained window.
    pub per_shard: BTreeMap<u32, ShardEvents>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_log_cross_sum_holds_through_truncation() {
        let mut log = ServerSpanLog::new(2);
        for i in 0..5u64 {
            log.charge(10);
            log.record(ServerSpan {
                ctx: TraceContext { trace: i, span: 0 },
                shard: 0,
                kind: ServerSpanKind::Apply,
                cycles: 7,
                bytes: 0,
                depth: 0,
            });
            log.add_residue(3);
        }
        assert_eq!(log.spans().len(), 2);
        assert_eq!(log.dropped(), 3);
        assert_eq!(log.remote_cycles(), 50);
        // 2 retained spans x 7 + residue (5x3 + 3 folded spans x 7).
        assert_eq!(log.span_cycles(), 14);
        assert_eq!(log.residue(), 15 + 21);
        log.check().unwrap();
    }

    #[test]
    fn span_log_detects_unbalanced_charge() {
        let mut log = ServerSpanLog::new(16);
        log.charge(100);
        log.add_residue(10);
        assert!(log.check().is_err());
        log.add_residue(90);
        log.check().unwrap();
    }

    #[test]
    fn depth_hist_buckets_and_quantiles() {
        let mut h = DepthHist::default();
        for v in [0u64, 1, 1, 2, 3, 4, 8, 100] {
            h.observe(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.buckets[0], 1, "zero lands in bucket 0");
        assert_eq!(h.buckets[1], 2, "ones in bucket 1");
        assert!(h.quantile(500) >= 1);
        assert!(h.quantile(999) >= 8);
        assert!(h.quantile(1000) >= 64, "max rank sees the 100");
        assert_eq!(DepthHist::default().quantile(500), 0);
    }

    #[test]
    fn event_ring_bounds_and_summarizes() {
        let log = FleetEventLog::new(3);
        for i in 0..5 {
            log.push(FleetEvent::JournalShip {
                shard: (i % 2) as u32,
                from: 0,
                epoch: i,
            });
        }
        log.push(FleetEvent::HedgeWaste { shard: 1 });
        let s = log.summary();
        assert_eq!(s.total, 6);
        assert_eq!(s.dropped, 3);
        let ships: u64 = s.per_shard.values().map(|e| e.journal_ships).sum();
        assert_eq!(ships, 2, "only the retained window is tallied");
        assert_eq!(s.per_shard[&1].hedge_wastes, 1);
        let recent = log.recent();
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].0, 3, "oldest retained seq");
    }

    #[test]
    fn gauges_merge_across_workers() {
        let mut a = ShardGauges {
            ops: 3,
            server_cycles: 10,
            ..ShardGauges::default()
        };
        a.queue_depth.observe(2);
        let mut b = ShardGauges {
            ops: 5,
            server_cycles: 7,
            ..ShardGauges::default()
        };
        b.queue_depth.observe(2);
        a.merge(&b);
        assert_eq!(a.ops, 8);
        assert_eq!(a.server_cycles, 17);
        assert_eq!(a.queue_depth.count(), 2);
    }
}
