//! Checksummed, generation-tagged object envelopes.
//!
//! The memory server stores each object wrapped in an envelope carrying the
//! server incarnation that stored it (the *generation*), the key it was
//! stored under, and an FNV-1a checksum over all of it. The client side of
//! the transport verifies the envelope on every fetch, so a torn or
//! bit-flipped payload surfaces as [`NetError::Corrupt`] instead of being
//! silently handed to the runtime as garbage.
//!
//! Wire layout (little-endian):
//!
//! ```text
//! magic      u32   0x43415244 ("CARD")
//! generation u64   server incarnation at store time
//! ds         u32   key: data-structure id
//! index      u64   key: object index
//! trace      u64   causal trace id of the storing operation (0 = untraced)
//! span       u32   issuing span within that trace
//! len        u32   payload length
//! checksum   u64   fnv1a64(generation ‖ ds ‖ index ‖ trace ‖ span ‖ payload)
//! payload    [u8; len]
//! ```
//!
//! The trace fields carry the [`TraceContext`] of the operation that stored
//! the object, so a fetched envelope names the span tree that last wrote it
//! (write provenance). They sit inside the checksum: a flipped trace id is
//! a detected corruption, never a silently wrong attribution.

use crate::transport::ObjKey;
use crate::wiretap::TraceContext;

/// Envelope magic ("CARD" little-endian).
pub const ENVELOPE_MAGIC: u32 = 0x4352_4144;

/// Bytes of header preceding the payload.
pub const HEADER_LEN: usize = 4 + 8 + 4 + 8 + 8 + 4 + 4 + 8;

/// FNV-1a 64-bit over `bytes`, continuing from `state` (seed with
/// [`fnv1a_init`]). Dependency-free and byte-order independent.
pub fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(PRIME);
    }
    state
}

/// FNV-1a offset basis.
pub fn fnv1a_init() -> u64 {
    0xcbf2_9ce4_8422_2325
}

fn checksum(generation: u64, key: ObjKey, ctx: TraceContext, payload: &[u8]) -> u64 {
    let mut h = fnv1a_init();
    h = fnv1a(h, &generation.to_le_bytes());
    h = fnv1a(h, &key.ds.to_le_bytes());
    h = fnv1a(h, &key.index.to_le_bytes());
    h = fnv1a(h, &ctx.trace.to_le_bytes());
    h = fnv1a(h, &ctx.span.to_le_bytes());
    fnv1a(h, payload)
}

/// Wrap `payload` in an envelope stamped with `generation`, `key` and the
/// causal context of the storing operation.
pub fn encode(generation: u64, key: ObjKey, ctx: TraceContext, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&ENVELOPE_MAGIC.to_le_bytes());
    out.extend_from_slice(&generation.to_le_bytes());
    out.extend_from_slice(&key.ds.to_le_bytes());
    out.extend_from_slice(&key.index.to_le_bytes());
    out.extend_from_slice(&ctx.trace.to_le_bytes());
    out.extend_from_slice(&ctx.span.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&checksum(generation, key, ctx, payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Why an envelope failed to decode. Every variant maps to
/// `NetError::Corrupt` at the transport boundary; the distinction exists
/// for diagnostics and tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnvelopeError {
    /// Bad magic or a header shorter than [`HEADER_LEN`].
    Malformed,
    /// Payload shorter than the header's length field (torn write/read).
    Torn,
    /// Envelope was stored under a different key than it was fetched with.
    KeyMismatch,
    /// Checksum over generation+key+payload does not verify.
    BadChecksum,
}

fn read_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(b[at..at + 4].try_into().unwrap())
}

fn read_u64(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(b[at..at + 8].try_into().unwrap())
}

/// Verify and unwrap an envelope fetched under `key`. Returns the stored
/// generation, the storing operation's trace context, and the payload.
pub fn decode(key: ObjKey, bytes: &[u8]) -> Result<(u64, TraceContext, Vec<u8>), EnvelopeError> {
    if bytes.len() < HEADER_LEN || read_u32(bytes, 0) != ENVELOPE_MAGIC {
        return Err(EnvelopeError::Malformed);
    }
    let generation = read_u64(bytes, 4);
    let ds = read_u32(bytes, 12);
    let index = read_u64(bytes, 16);
    let ctx = TraceContext {
        trace: read_u64(bytes, 24),
        span: read_u32(bytes, 32),
    };
    let len = read_u32(bytes, 36) as usize;
    let sum = read_u64(bytes, 40);
    if bytes.len() != HEADER_LEN + len {
        return Err(EnvelopeError::Torn);
    }
    if ds != key.ds || index != key.index {
        return Err(EnvelopeError::KeyMismatch);
    }
    let payload = &bytes[HEADER_LEN..];
    if checksum(generation, key, ctx, payload) != sum {
        return Err(EnvelopeError::BadChecksum);
    }
    Ok((generation, ctx, payload.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> ObjKey {
        ObjKey { ds: 7, index: 42 }
    }

    fn ctx() -> TraceContext {
        TraceContext { trace: 11, span: 2 }
    }

    #[test]
    fn round_trip() {
        let payload = vec![0xabu8; 4096];
        let env = encode(3, key(), ctx(), &payload);
        assert_eq!(env.len(), HEADER_LEN + 4096);
        let (generation, got_ctx, got) = decode(key(), &env).unwrap();
        assert_eq!(generation, 3);
        assert_eq!(got_ctx, ctx());
        assert_eq!(got, payload);
    }

    #[test]
    fn empty_payload_round_trips() {
        let env = encode(0, key(), TraceContext::NONE, &[]);
        assert_eq!(decode(key(), &env), Ok((0, TraceContext::NONE, Vec::new())));
    }

    #[test]
    fn single_bit_flip_is_detected_anywhere() {
        let env = encode(9, key(), ctx(), &[1, 2, 3, 4, 5, 6, 7, 8]);
        for byte in 0..env.len() {
            for bit in 0..8 {
                let mut bad = env.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    decode(key(), &bad).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn torn_reads_are_detected() {
        let env = encode(1, key(), ctx(), &[9u8; 128]);
        assert_eq!(
            decode(key(), &env[..env.len() - 1]),
            Err(EnvelopeError::Torn)
        );
        assert_eq!(decode(key(), &env[..10]), Err(EnvelopeError::Malformed));
        let mut longer = env.clone();
        longer.push(0);
        assert_eq!(decode(key(), &longer), Err(EnvelopeError::Torn));
    }

    #[test]
    fn wrong_key_is_detected() {
        let env = encode(1, key(), ctx(), &[5u8; 16]);
        assert_eq!(
            decode(ObjKey { ds: 7, index: 43 }, &env),
            Err(EnvelopeError::KeyMismatch)
        );
    }

    #[test]
    fn generation_is_covered_by_checksum() {
        let mut env = encode(1, key(), ctx(), &[5u8; 16]);
        env[4] = 2; // patch the generation field
        assert_eq!(decode(key(), &env), Err(EnvelopeError::BadChecksum));
    }

    #[test]
    fn trace_fields_are_covered_by_checksum() {
        let mut env = encode(1, key(), ctx(), &[5u8; 16]);
        env[24] ^= 1; // patch the trace id field
        assert_eq!(decode(key(), &env), Err(EnvelopeError::BadChecksum));
        let mut env = encode(1, key(), ctx(), &[5u8; 16]);
        env[32] ^= 1; // patch the span field
        assert_eq!(decode(key(), &env), Err(EnvelopeError::BadChecksum));
    }
}
