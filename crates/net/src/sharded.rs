//! Sharded remote tier: N shard server threads behind one [`Transport`]
//! facade, serving many concurrent worker VMs.
//!
//! Grown from the [`crate::threaded`] seam ("two machines" over bounded
//! channels), this module adds the concurrent data plane of the serving
//! story:
//!
//! - **Sharding** — objects hash to one of N shard threads, each owning an
//!   independent store, generation counter and unacked set (the crash
//!   semantics of [`crate::chaos::ChaosTransport`], per shard).
//! - **Fetch coalescing** — concurrent misses on the same [`ObjKey`] from
//!   different clients dedup into one wire transfer; followers wait on the
//!   leader's result and bump a `coalesced_hits` counter.
//! - **Batched writebacks** — dirty objects buffer client-side per shard
//!   and depart in one envelope *train* instead of one message per object;
//!   a bounded window of unacknowledged trains keeps the pipeline async
//!   without unbounded queueing.
//!
//! ## Determinism contract
//!
//! Each client's *modeled* cycle accounting depends only on its own
//! operation sequence: a coalesced follower is charged the same modeled
//! cost as the leader (the modeled clock is per-worker virtual time), and
//! the writeback buffer/window state is client-local. Per-client
//! [`NetStats`] are therefore reproducible run to run even though thread
//! interleaving is not. What *is* interleaving-dependent — which fetch won
//! the race, how many transfers were saved — lives in the shared
//! [`ShardedStats`] counters and is reported, never asserted byte-exactly.
//! Final server state is order-independent for the workloads this tier
//! serves (identical load phases, read-only serve phases), which the
//! checksum-quiescence oracle in `cards-vm::worker` verifies.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::model::NetworkModel;
use crate::stats::NetStats;
use crate::transport::{Fetched, NetError, ObjKey, Transport};
use crate::wiretap::TraceContext;

/// Tuning knobs for the sharded tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardedConfig {
    /// Number of shard server threads.
    pub shards: usize,
    /// Objects per writeback train (a full buffer departs).
    pub train_len: usize,
    /// Max unacknowledged trains per shard before a put blocks on the
    /// oldest ack (the outstanding-request window).
    pub window: usize,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            shards: 4,
            train_len: 8,
            window: 4,
        }
    }
}

enum ShardRequest {
    Fetch(ObjKey, SyncSender<ShardResponse>),
    /// One writeback train: applied atomically in arrival order.
    Train(Vec<(ObjKey, Vec<u8>)>, SyncSender<ShardResponse>),
    Remove(ObjKey, SyncSender<ShardResponse>),
    Contains(ObjKey, SyncSender<ShardResponse>),
    ResidentBytes(SyncSender<ShardResponse>),
    /// Durability barrier: acknowledge every buffered put on this shard.
    FlushAck(SyncSender<ShardResponse>),
    /// Per-object digests for the quiescence oracle.
    Digest(SyncSender<ShardResponse>),
    /// Crash/restart: drop unacked objects, bump the generation.
    Crash(SyncSender<ShardResponse>),
    /// Hold the shard unresponsive until the paired sender drops — fault
    /// injection used to force request overlap deterministically in tests.
    Stall(Receiver<()>),
    Shutdown,
}

enum ShardResponse {
    Data(Option<Vec<u8>>),
    Done,
    Bool(bool),
    Bytes(u64),
    Digest(Vec<(ObjKey, u64)>),
}

/// Cross-client counters (shared, atomic): the interleaving-dependent
/// truth about what actually crossed the wire.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardedStats {
    /// Fetches that piggybacked on another client's in-flight transfer.
    pub coalesced_hits: u64,
    /// Fetches that actually crossed the wire (coalescing leaders).
    pub wire_fetches: u64,
    /// Writeback trains sent.
    pub trains: u64,
    /// Objects carried by those trains.
    pub train_objects: u64,
    /// Shard crashes injected.
    pub crashes: u64,
    /// Unacked objects dropped by crashes.
    pub dropped_objects: u64,
}

#[derive(Default)]
struct SharedCounters {
    coalesced_hits: AtomicU64,
    wire_fetches: AtomicU64,
    trains: AtomicU64,
    train_objects: AtomicU64,
    crashes: AtomicU64,
    dropped_objects: AtomicU64,
}

impl SharedCounters {
    fn snapshot(&self) -> ShardedStats {
        ShardedStats {
            coalesced_hits: self.coalesced_hits.load(Ordering::Relaxed),
            wire_fetches: self.wire_fetches.load(Ordering::Relaxed),
            trains: self.trains.load(Ordering::Relaxed),
            train_objects: self.train_objects.load(Ordering::Relaxed),
            crashes: self.crashes.load(Ordering::Relaxed),
            dropped_objects: self.dropped_objects.load(Ordering::Relaxed),
        }
    }
}

/// One in-flight fetch the coalescer tracks: followers block on the
/// condvar until the leader publishes the result.
#[derive(Default)]
struct Inflight {
    done: Mutex<Option<Result<Vec<u8>, NetError>>>,
    cv: Condvar,
}

#[derive(Default)]
struct Coalescer {
    inflight: Mutex<HashMap<ObjKey, Arc<Inflight>>>,
}

struct ShardHandle {
    tx: SyncSender<ShardRequest>,
    generation: Arc<AtomicU64>,
    join: Option<JoinHandle<()>>,
}

/// Owner of the shard threads. Clients connect via
/// [`ShardedServer::client`]; dropping the server shuts every shard down.
pub struct ShardedServer {
    shards: Vec<ShardHandle>,
    counters: Arc<SharedCounters>,
    coalescer: Arc<Coalescer>,
    model: NetworkModel,
    cfg: ShardedConfig,
}

/// RAII handle returned by [`ShardedServer::stall_shard`]: the shard stays
/// unresponsive until this is dropped (or [`StallGuard::release`] is
/// called).
pub struct StallGuard {
    _tx: SyncSender<()>,
}

impl StallGuard {
    /// Unblock the stalled shard.
    pub fn release(self) {}
}

impl ShardedServer {
    /// Spawn `cfg.shards` shard threads with the given cost model.
    pub fn spawn(cfg: ShardedConfig, model: NetworkModel) -> Self {
        let counters = Arc::new(SharedCounters::default());
        let shards = (0..cfg.shards.max(1))
            .map(|i| {
                let (tx, rx) = sync_channel::<ShardRequest>(256);
                let generation = Arc::new(AtomicU64::new(0));
                let gen_clone = Arc::clone(&generation);
                let counters = Arc::clone(&counters);
                let join = std::thread::Builder::new()
                    .name(format!("cards-shard-{i}"))
                    .spawn(move || shard_loop(rx, gen_clone, counters))
                    .expect("spawn shard server");
                ShardHandle {
                    tx,
                    generation,
                    join: Some(join),
                }
            })
            .collect();
        ShardedServer {
            shards,
            counters,
            coalescer: Arc::new(Coalescer::default()),
            model,
            cfg,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Connect a new client. Each worker VM owns one.
    pub fn client(&self) -> ShardedClient {
        ShardedClient {
            shards: self
                .shards
                .iter()
                .map(|s| ClientShard {
                    tx: s.tx.clone(),
                    generation: Arc::clone(&s.generation),
                    buf: BTreeMap::new(),
                    window: VecDeque::new(),
                })
                .collect(),
            coalescer: Arc::clone(&self.coalescer),
            counters: Arc::clone(&self.counters),
            model: self.model,
            cfg: self.cfg,
            stats: NetStats::default(),
            ctx: TraceContext::NONE,
        }
    }

    /// Shared cross-client counters.
    pub fn sharded_stats(&self) -> ShardedStats {
        self.counters.snapshot()
    }

    fn control(&self, shard: usize, make: impl FnOnce(SyncSender<ShardResponse>) -> ShardRequest) {
        let (tx, rx) = sync_channel(1);
        if self.shards[shard].tx.send(make(tx)).is_ok() {
            let _ = rx.recv();
        }
    }

    /// Crash shard `i`: its unacked objects are dropped and its generation
    /// bumps, exactly as [`crate::chaos::ChaosTransport`]'s crash/restart
    /// phase — but shard-scoped and caller-triggered.
    pub fn crash_shard(&self, i: usize) {
        self.control(i, ShardRequest::Crash);
    }

    /// Kill shard `i` outright, as if that server machine died. Every
    /// subsequent operation touching it surfaces
    /// [`NetError::Disconnected`] deterministically.
    pub fn kill_shard(&mut self, i: usize) {
        let _ = self.shards[i].tx.send(ShardRequest::Shutdown);
        if let Some(h) = self.shards[i].join.take() {
            let _ = h.join();
        }
    }

    /// Hold shard `i` unresponsive until the returned guard is dropped.
    /// Requests queue behind the stall; used to force deterministic
    /// request overlap (e.g. to exercise the coalescer) in tests.
    pub fn stall_shard(&self, i: usize) -> StallGuard {
        let (tx, rx) = sync_channel::<()>(1);
        let _ = self.shards[i].tx.send(ShardRequest::Stall(rx));
        StallGuard { _tx: tx }
    }

    /// Per-DS checksums over the full sharded store: the quiescence
    /// oracle's observable. Digests are folded in global key order, so the
    /// result is independent of shard count and arrival interleaving.
    pub fn digest(&self) -> BTreeMap<u32, u64> {
        let mut all: Vec<(ObjKey, u64)> = Vec::new();
        for i in 0..self.shards.len() {
            let (tx, rx) = sync_channel(1);
            if self.shards[i].tx.send(ShardRequest::Digest(tx)).is_err() {
                continue;
            }
            if let Ok(ShardResponse::Digest(v)) = rx.recv() {
                all.extend(v);
            }
        }
        all.sort_unstable_by_key(|(k, _)| *k);
        let mut per_ds: BTreeMap<u32, u64> = BTreeMap::new();
        for (key, h) in all {
            let acc = per_ds.entry(key.ds).or_insert(0xcbf2_9ce4_8422_2325);
            *acc = mix64(*acc ^ key.index ^ h);
        }
        per_ds
    }
}

impl Drop for ShardedServer {
    fn drop(&mut self) {
        for s in &mut self.shards {
            let _ = s.tx.send(ShardRequest::Shutdown);
            if let Some(h) = s.join.take() {
                let _ = h.join();
            }
        }
    }
}

/// FNV-1a over the payload: cheap, deterministic per-object digest.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer (shard selection, digest folding).
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn shard_loop(
    rx: Receiver<ShardRequest>,
    generation: Arc<AtomicU64>,
    counters: Arc<SharedCounters>,
) {
    let mut store: HashMap<ObjKey, Vec<u8>> = HashMap::new();
    let mut resident = 0u64;
    // Keys put since the last durability barrier (BTreeSet: deterministic
    // drop order on crash, mirroring ChaosTransport).
    let mut unacked: BTreeSet<ObjKey> = BTreeSet::new();
    while let Ok(req) = rx.recv() {
        match req {
            ShardRequest::Fetch(k, reply) => {
                let _ = reply.send(ShardResponse::Data(store.get(&k).cloned()));
            }
            ShardRequest::Train(objs, reply) => {
                counters.trains.fetch_add(1, Ordering::Relaxed);
                counters
                    .train_objects
                    .fetch_add(objs.len() as u64, Ordering::Relaxed);
                for (k, data) in objs {
                    resident += data.len() as u64;
                    if let Some(old) = store.insert(k, data) {
                        resident -= old.len() as u64;
                    }
                    unacked.insert(k);
                }
                let _ = reply.send(ShardResponse::Done);
            }
            ShardRequest::Remove(k, reply) => {
                if let Some(old) = store.remove(&k) {
                    resident -= old.len() as u64;
                }
                unacked.remove(&k);
                let _ = reply.send(ShardResponse::Done);
            }
            ShardRequest::Contains(k, reply) => {
                let _ = reply.send(ShardResponse::Bool(store.contains_key(&k)));
            }
            ShardRequest::ResidentBytes(reply) => {
                let _ = reply.send(ShardResponse::Bytes(resident));
            }
            ShardRequest::FlushAck(reply) => {
                unacked.clear();
                let _ = reply.send(ShardResponse::Done);
            }
            ShardRequest::Digest(reply) => {
                let v: Vec<(ObjKey, u64)> = store.iter().map(|(k, b)| (*k, fnv64(b))).collect();
                let _ = reply.send(ShardResponse::Digest(v));
            }
            ShardRequest::Crash(reply) => {
                counters.crashes.fetch_add(1, Ordering::Relaxed);
                generation.fetch_add(1, Ordering::Relaxed);
                for k in std::mem::take(&mut unacked) {
                    if let Some(old) = store.remove(&k) {
                        resident -= old.len() as u64;
                        counters.dropped_objects.fetch_add(1, Ordering::Relaxed);
                    }
                }
                let _ = reply.send(ShardResponse::Done);
            }
            ShardRequest::Stall(gate) => {
                // Blocks until every sender for the gate is dropped.
                let _ = gate.recv();
            }
            ShardRequest::Shutdown => break,
        }
    }
}

struct ClientShard {
    tx: SyncSender<ShardRequest>,
    generation: Arc<AtomicU64>,
    /// Pending writeback buffer: read-your-writes store for keys whose
    /// train has not departed yet (BTreeMap: deterministic departure
    /// order).
    buf: BTreeMap<ObjKey, Vec<u8>>,
    /// Acks of departed-but-unacknowledged trains, oldest first.
    window: VecDeque<Receiver<ShardResponse>>,
}

/// Client half of the sharded tier: one per worker VM. Implements
/// [`Transport`] with coalesced fetches and batched, windowed writebacks.
pub struct ShardedClient {
    shards: Vec<ClientShard>,
    coalescer: Arc<Coalescer>,
    counters: Arc<SharedCounters>,
    model: NetworkModel,
    cfg: ShardedConfig,
    stats: NetStats,
    ctx: TraceContext,
}

impl ShardedClient {
    fn shard_of(&self, key: ObjKey) -> usize {
        (mix64(key.index ^ (key.ds as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)) as usize)
            % self.shards.len()
    }

    /// Cross-client counters (coalescing, trains, crashes).
    pub fn sharded_stats(&self) -> ShardedStats {
        self.counters.snapshot()
    }

    fn call(
        &self,
        shard: usize,
        make: impl FnOnce(SyncSender<ShardResponse>) -> ShardRequest,
    ) -> Result<ShardResponse, NetError> {
        let (tx, rx) = sync_channel(1);
        self.shards[shard]
            .tx
            .send(make(tx))
            .map_err(|_| NetError::Disconnected)?;
        rx.recv().map_err(|_| NetError::Disconnected)
    }

    /// One wire fetch (the coalescing leader's transfer).
    fn wire_fetch(&self, key: ObjKey) -> Result<Vec<u8>, NetError> {
        self.counters.wire_fetches.fetch_add(1, Ordering::Relaxed);
        match self.call(self.shard_of(key), |tx| ShardRequest::Fetch(key, tx))? {
            ShardResponse::Data(Some(bytes)) => Ok(bytes),
            ShardResponse::Data(None) => Err(NetError::NotFound(key)),
            _ => Err(NetError::Disconnected),
        }
    }

    /// Fetch through the coalescer: first-comer leads the transfer,
    /// concurrent callers for the same key follow its result.
    fn coalesced_fetch(&self, key: ObjKey) -> Result<Vec<u8>, NetError> {
        let (entry, leader) = {
            let mut map = self.coalescer.inflight.lock().expect("coalescer lock");
            match map.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => (Arc::clone(e.get()), false),
                std::collections::hash_map::Entry::Vacant(v) => {
                    let e = Arc::new(Inflight::default());
                    v.insert(Arc::clone(&e));
                    (e, true)
                }
            }
        };
        if leader {
            let result = self.wire_fetch(key);
            {
                let mut done = entry.done.lock().expect("inflight lock");
                *done = Some(result.clone());
                entry.cv.notify_all();
            }
            self.coalescer
                .inflight
                .lock()
                .expect("coalescer lock")
                .remove(&key);
            result
        } else {
            self.counters.coalesced_hits.fetch_add(1, Ordering::Relaxed);
            let mut done = entry.done.lock().expect("inflight lock");
            while done.is_none() {
                done = entry.cv.wait(done).expect("inflight wait");
            }
            done.clone().expect("published above")
        }
    }

    fn fetch_inner(&mut self, key: ObjKey, batched: bool) -> Result<Fetched, NetError> {
        let shard = self.shard_of(key);
        // Read-your-writes: a buffered put not yet departed must serve
        // fetches (the runtime refetches objects it just evicted).
        if let Some(bytes) = self.shards[shard].buf.get(&key) {
            let bytes = bytes.clone();
            let cycles = self.model.per_msg_cpu;
            self.stats.fetches += 1;
            self.stats.bytes_fetched += bytes.len() as u64;
            self.stats.cycles += cycles;
            return Ok(Fetched { bytes, cycles });
        }
        let bytes = self.coalesced_fetch(key)?;
        // Leader or follower, the modeled charge is identical: the modeled
        // clock is per-worker virtual time, so accounting must not depend
        // on which thread won the race (see module docs).
        let cycles = if batched {
            self.model.per_msg_cpu + self.model.wire_cycles(bytes.len() as u64)
        } else {
            self.model.fetch_cost(bytes.len() as u64)
        };
        self.stats.fetches += 1;
        self.stats.bytes_fetched += bytes.len() as u64;
        self.stats.cycles += cycles;
        Ok(Fetched { bytes, cycles })
    }

    /// Seal the shard's pending buffer into a train and send it without
    /// waiting for the ack (the window bounds how far ahead we run).
    /// Returns the modeled cycles of the departure.
    fn depart_train(&mut self, shard: usize) -> Result<u64, NetError> {
        if self.shards[shard].buf.is_empty() {
            return Ok(0);
        }
        let objs: Vec<(ObjKey, Vec<u8>)> = std::mem::take(&mut self.shards[shard].buf)
            .into_iter()
            .collect();
        let (tx, rx) = sync_channel(1);
        self.shards[shard]
            .tx
            .send(ShardRequest::Train(objs, tx))
            .map_err(|_| NetError::Disconnected)?;
        self.shards[shard].window.push_back(rx);
        // One message's CPU cost per train; the per-object wire cycles
        // were charged when each object was buffered.
        let cycles = self.model.per_msg_cpu;
        self.stats.cycles += cycles;
        while self.shards[shard].window.len() > self.cfg.window.max(1) {
            let oldest = self.shards[shard].window.pop_front().expect("nonempty");
            oldest.recv().map_err(|_| NetError::Disconnected)?;
        }
        Ok(cycles)
    }

    /// Drain every outstanding train ack on every shard.
    fn drain_window(&mut self) -> Result<(), NetError> {
        let mut dead = false;
        for s in &mut self.shards {
            while let Some(rx) = s.window.pop_front() {
                dead |= rx.recv().is_err();
            }
        }
        if dead {
            Err(NetError::Disconnected)
        } else {
            Ok(())
        }
    }
}

impl Transport for ShardedClient {
    fn fetch(&mut self, key: ObjKey) -> Result<Fetched, NetError> {
        self.fetch_inner(key, false)
    }

    fn fetch_batched(&mut self, key: ObjKey) -> Result<Fetched, NetError> {
        self.fetch_inner(key, true)
    }

    fn rtt_cost(&self) -> u64 {
        self.model.base_latency + self.model.per_msg_cpu
    }

    fn put(&mut self, key: ObjKey, data: &[u8]) -> Result<u64, NetError> {
        let shard = self.shard_of(key);
        // Serialization cost per object; the train charges one message CPU
        // for the whole batch on departure.
        let mut cycles = self.model.wire_cycles(data.len() as u64);
        self.stats.writebacks += 1;
        self.stats.bytes_written += data.len() as u64;
        self.stats.cycles += cycles;
        self.shards[shard].buf.insert(key, data.to_vec());
        if self.shards[shard].buf.len() >= self.cfg.train_len.max(1) {
            cycles += self.depart_train(shard)?;
        }
        Ok(cycles)
    }

    fn remove(&mut self, key: ObjKey) -> Result<u64, NetError> {
        let shard = self.shard_of(key);
        self.shards[shard].buf.remove(&key);
        match self.call(shard, |tx| ShardRequest::Remove(key, tx))? {
            ShardResponse::Done => {
                self.stats.cycles += self.model.per_msg_cpu;
                Ok(self.model.per_msg_cpu)
            }
            _ => Err(NetError::Disconnected),
        }
    }

    fn flush(&mut self) -> Result<u64, NetError> {
        let mut cycles = 0;
        for shard in 0..self.shards.len() {
            cycles += self.depart_train(shard)?;
        }
        self.drain_window()?;
        for shard in 0..self.shards.len() {
            match self.call(shard, ShardRequest::FlushAck)? {
                ShardResponse::Done => {}
                _ => return Err(NetError::Disconnected),
            }
        }
        // One logical barrier round trip (shards are flushed in parallel).
        cycles += self.model.base_latency + self.model.per_msg_cpu;
        self.stats.cycles += self.model.base_latency + self.model.per_msg_cpu;
        Ok(cycles)
    }

    fn generation(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.generation.load(Ordering::Relaxed))
            .sum()
    }

    fn contains(&self, key: ObjKey) -> bool {
        let shard = self.shard_of(key);
        if self.shards[shard].buf.contains_key(&key) {
            return true;
        }
        matches!(
            self.call(shard, |tx| ShardRequest::Contains(key, tx)),
            Ok(ShardResponse::Bool(true))
        )
    }

    fn stats(&self) -> NetStats {
        self.stats
    }

    fn remote_bytes(&self) -> u64 {
        let mut total = 0;
        for shard in 0..self.shards.len() {
            if let Ok(ShardResponse::Bytes(b)) = self.call(shard, ShardRequest::ResidentBytes) {
                total += b;
            }
        }
        total
    }

    fn set_trace_context(&mut self, ctx: TraceContext) {
        self.ctx = ctx;
    }

    fn trace_context(&self) -> TraceContext {
        self.ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(ds: u32, index: u64) -> ObjKey {
        ObjKey { ds, index }
    }

    fn server(shards: usize) -> ShardedServer {
        ShardedServer::spawn(
            ShardedConfig {
                shards,
                ..ShardedConfig::default()
            },
            NetworkModel::default(),
        )
    }

    #[test]
    fn round_trip_across_shards() {
        let srv = server(4);
        let mut c = srv.client();
        for i in 0..64u64 {
            c.put(key(1, i), &[i as u8; 128]).unwrap();
        }
        c.flush().unwrap();
        for i in 0..64u64 {
            let f = c.fetch(key(1, i)).unwrap();
            assert_eq!(f.bytes, vec![i as u8; 128]);
        }
        assert_eq!(c.remote_bytes(), 64 * 128);
        let s = srv.sharded_stats();
        assert!(s.trains >= 8, "64 puts at train_len=8 must form trains");
        assert_eq!(s.train_objects, 64);
    }

    #[test]
    fn pending_buffer_serves_read_your_writes() {
        let srv = server(2);
        let mut c = srv.client();
        // One put: below train_len, so it only lives in the client buffer.
        c.put(key(0, 7), &[9u8; 64]).unwrap();
        assert!(c.contains(key(0, 7)));
        let f = c.fetch(key(0, 7)).unwrap();
        assert_eq!(f.bytes, vec![9u8; 64]);
        // Nothing crossed the wire for it yet.
        assert_eq!(srv.sharded_stats().train_objects, 0);
        c.flush().unwrap();
        assert_eq!(srv.sharded_stats().train_objects, 1);
    }

    #[test]
    fn modeled_costs_are_deterministic_per_client() {
        let run = || {
            let srv = server(3);
            let mut c = srv.client();
            for i in 0..40u64 {
                c.put(key(2, i), &[1u8; 256]).unwrap();
            }
            c.flush().unwrap();
            for i in 0..40u64 {
                c.fetch(key(2, i)).unwrap();
            }
            c.stats()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn batched_writeback_is_cheaper_than_per_object_puts() {
        // Train: N * wire + per-train CPU  vs  N * (CPU + wire).
        let srv = server(1);
        let mut c = srv.client();
        let n = 8u64;
        let mut batched = 0;
        for i in 0..n {
            batched += c.put(key(0, i), &[5u8; 4096]).unwrap();
        }
        let per_object = n * NetworkModel::default().writeback_cost(4096);
        assert!(
            batched < per_object,
            "train cost {batched} must undercut {per_object}"
        );
    }

    #[test]
    fn stalled_shard_forces_coalescing() {
        let srv = server(1);
        let mut setup = srv.client();
        setup.put(key(0, 0), &[3u8; 512]).unwrap();
        setup.flush().unwrap();
        let gate = srv.stall_shard(0);
        let (mut a, mut b) = (srv.client(), srv.client());
        let ta = std::thread::spawn(move || a.fetch(key(0, 0)).unwrap().bytes);
        // Wait until A is committed as the coalescing leader (its wire
        // fetch is queued behind the stall), then start B.
        while srv.sharded_stats().wire_fetches == 0 {
            std::thread::yield_now();
        }
        let tb = std::thread::spawn(move || b.fetch(key(0, 0)).unwrap().bytes);
        // B must reach the follower path before we release the shard.
        while srv.sharded_stats().coalesced_hits == 0 {
            std::thread::yield_now();
        }
        gate.release();
        assert_eq!(ta.join().unwrap(), vec![3u8; 512]);
        assert_eq!(tb.join().unwrap(), vec![3u8; 512]);
        let s = srv.sharded_stats();
        assert_eq!(s.coalesced_hits, 1, "second miss must coalesce");
        assert_eq!(s.wire_fetches, 1, "only one transfer crosses the wire");
    }

    #[test]
    fn crash_drops_unacked_and_bumps_generation() {
        let srv = server(2);
        let mut c = srv.client();
        c.put(key(0, 1), &[1u8; 64]).unwrap();
        c.flush().unwrap(); // durable
        c.put(key(0, 2), &[2u8; 64]).unwrap();
        // Force the buffered put onto the server without acknowledging it.
        for shard in 0..2 {
            c.depart_train(shard).unwrap();
        }
        c.drain_window().unwrap();
        let g0 = c.generation();
        for i in 0..2 {
            srv.crash_shard(i);
        }
        assert_eq!(c.generation(), g0 + 2, "every crash bumps a generation");
        assert_eq!(c.fetch(key(0, 1)).unwrap().bytes, vec![1u8; 64]);
        assert_eq!(c.fetch(key(0, 2)), Err(NetError::NotFound(key(0, 2))));
        assert_eq!(srv.sharded_stats().dropped_objects, 1);
    }

    #[test]
    fn dead_shard_surfaces_disconnected_deterministically() {
        for _ in 0..8 {
            let mut srv = server(1);
            let mut c = srv.client();
            c.put(key(0, 0), &[1u8; 32]).unwrap();
            srv.kill_shard(0);
            assert_eq!(c.fetch(key(9, 9)), Err(NetError::Disconnected));
            assert_eq!(c.flush(), Err(NetError::Disconnected));
            assert_eq!(c.remove(key(9, 9)), Err(NetError::Disconnected));
        }
    }

    #[test]
    fn window_bounds_outstanding_trains() {
        let srv = ShardedServer::spawn(
            ShardedConfig {
                shards: 1,
                train_len: 1,
                window: 2,
            },
            NetworkModel::free(),
        );
        let mut c = srv.client();
        for i in 0..64u64 {
            c.put(key(0, i), &[0u8; 16]).unwrap();
            assert!(c.shards[0].window.len() <= 2, "window must stay bounded");
        }
        c.flush().unwrap();
        assert_eq!(srv.sharded_stats().train_objects, 64);
    }

    #[test]
    fn digest_is_shard_count_independent() {
        let fill = |shards: usize| {
            let srv = server(shards);
            let mut c = srv.client();
            for ds in 0..3u32 {
                for i in 0..50u64 {
                    c.put(key(ds, i), &[(ds as u8) ^ (i as u8); 96]).unwrap();
                }
            }
            c.flush().unwrap();
            srv.digest()
        };
        let a = fill(1);
        let b = fill(4);
        assert_eq!(a, b, "digest must not depend on sharding");
        assert_eq!(a.len(), 3);
    }
}
