//! Sharded remote tier: N shard server threads behind one [`Transport`]
//! facade, serving many concurrent worker VMs.
//!
//! Grown from the [`crate::threaded`] seam ("two machines" over bounded
//! channels), this module adds the concurrent data plane of the serving
//! story:
//!
//! - **Sharding** — objects hash to one of N shards, each owning an
//!   independent store, generation counter and unacked set (the crash
//!   semantics of [`crate::chaos::ChaosTransport`], per shard).
//! - **Replication** — each shard is a replica set (primary + backup by
//!   default, see [`crate::replica`]): the primary ships its writeback
//!   journal to the backup in bounded-lag epochs, and clients perform
//!   epoch-fenced failover when the primary dies or times out. Stalled
//!   primaries can additionally be raced with **hedged reads** against
//!   the backup, first response wins.
//! - **Fetch coalescing** — concurrent misses on the same [`ObjKey`] from
//!   different clients dedup into one wire transfer; followers wait on the
//!   leader's result and bump a `coalesced_hits` counter.
//! - **Batched writebacks** — dirty objects buffer client-side per shard
//!   and depart in one envelope *train* instead of one message per object;
//!   a bounded window of unacknowledged trains keeps the pipeline async
//!   without unbounded queueing. A train is retained until acked so a
//!   failover mid-flight can replay it against the new primary.
//!
//! ## Determinism contract
//!
//! Each client's *modeled* cycle accounting depends only on its own
//! operation sequence: a coalesced follower is charged the same modeled
//! cost as the leader (the modeled clock is per-worker virtual time), a
//! hedged fetch is charged identically whichever replica won the race,
//! and the writeback buffer/window state is client-local. Per-client
//! [`NetStats`] are therefore reproducible run to run even though thread
//! interleaving is not. What *is* interleaving-dependent — which fetch won
//! the race, how many transfers were saved, who initiated a failover —
//! lives in the shared [`ShardedStats`] counters and is reported, never
//! asserted byte-exactly. Final server state is order-independent for the
//! workloads this tier serves (identical load phases, single-writer serve
//! phases), which the checksum-quiescence oracle in `cards-vm::worker`
//! verifies — including across every fault cell of the failover campaign.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Condvar, Mutex};

use crate::fleet::{
    FailoverIncident, FleetEvent, FleetEventLog, ServerSpan, ServerSpanKind, ServerSpanLog,
    DEFAULT_SPAN_LOG_CAPACITY,
};
use crate::model::NetworkModel;
use crate::replica::{
    replica_loop, ReplicaConfig, ReplicaRequest, ReplicaResponse, ReplicaSet, SharedCounters,
};
use crate::stats::NetStats;
use crate::transport::{FaultEvents, Fetched, NetError, ObjKey, Transport};
use crate::wiretap::{TraceContext, WireDir, WireOp, WireTap, DEFAULT_TAP_CAPACITY};

/// Upper bound on fence/failover retries per logical operation before the
/// client gives up with [`NetError::Disconnected`].
const FAILOVER_RETRY_CAP: usize = 32;

/// Tuning knobs for the sharded tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardedConfig {
    /// Number of shard replica sets.
    pub shards: usize,
    /// Objects per writeback train (a full buffer departs).
    pub train_len: usize,
    /// Max unacknowledged trains per shard before a put blocks on the
    /// oldest ack (the outstanding-request window).
    pub window: usize,
    /// Per-client [`WireTap`] ring capacity (0 disables retention; drops
    /// are still counted per op).
    pub tap_capacity: usize,
    /// Per-client [`ServerSpanLog`] capacity (overflowing spans fold
    /// their cycles into the residue).
    pub span_log_capacity: usize,
    /// Replication / failover / hedging knobs.
    pub replica: ReplicaConfig,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            shards: 4,
            train_len: 8,
            window: 4,
            tap_capacity: DEFAULT_TAP_CAPACITY,
            span_log_capacity: DEFAULT_SPAN_LOG_CAPACITY,
            replica: ReplicaConfig::default(),
        }
    }
}

/// Cross-client counters (shared, atomic): the interleaving-dependent
/// truth about what actually crossed the wire.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardedStats {
    /// Fetches that piggybacked on another client's in-flight transfer.
    pub coalesced_hits: u64,
    /// Fetches that actually crossed the wire (coalescing leaders).
    pub wire_fetches: u64,
    /// Writeback trains sent.
    pub trains: u64,
    /// Objects carried by those trains.
    pub train_objects: u64,
    /// Shard crashes injected.
    pub crashes: u64,
    /// Unacked objects dropped by crashes.
    pub dropped_objects: u64,
    /// Completed takeovers (backup promoted to primary).
    pub failovers: u64,
    /// Failover entries, including ones that lost the race to another
    /// client and found the shard already healthy.
    pub failover_attempts: u64,
    /// Writes bounced for carrying a stale fencing epoch or landing on a
    /// deposed replica.
    pub fenced_writes: u64,
    /// Journal ships discarded because the sender was deposed mid-flight.
    pub fenced_ships: u64,
    /// Fetches that sent a hedge to the backup.
    pub hedged_fetches: u64,
    /// Hedged fetches where the primary answered first anyway.
    pub hedge_wasted: u64,
    /// Journal epochs shipped primary → backup.
    pub shipped_epochs: u64,
}

impl SharedCounters {
    fn snapshot(&self) -> ShardedStats {
        ShardedStats {
            coalesced_hits: self.coalesced_hits.load(Ordering::Relaxed),
            wire_fetches: self.wire_fetches.load(Ordering::Relaxed),
            trains: self.trains.load(Ordering::Relaxed),
            train_objects: self.train_objects.load(Ordering::Relaxed),
            crashes: self.crashes.load(Ordering::Relaxed),
            dropped_objects: self.dropped_objects.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            failover_attempts: self.failover_attempts.load(Ordering::Relaxed),
            fenced_writes: self.fenced_writes.load(Ordering::Relaxed),
            fenced_ships: self.fenced_ships.load(Ordering::Relaxed),
            hedged_fetches: self.hedged_fetches.load(Ordering::Relaxed),
            hedge_wasted: self.hedge_wasted.load(Ordering::Relaxed),
            shipped_epochs: self.shipped_epochs.load(Ordering::Relaxed),
        }
    }
}

/// One in-flight fetch the coalescer tracks: followers block on the
/// condvar until the leader publishes the result. The leader's causal
/// context is retained so a joining follower can record who it
/// piggybacked on (interleaving-dependent: event-log only).
struct Inflight {
    done: Mutex<Option<Result<Vec<u8>, NetError>>>,
    cv: Condvar,
    leader_ctx: TraceContext,
}

impl Inflight {
    fn new(leader_ctx: TraceContext) -> Self {
        Inflight {
            done: Mutex::new(None),
            cv: Condvar::new(),
            leader_ctx,
        }
    }
}

#[derive(Default)]
struct Coalescer {
    inflight: Mutex<HashMap<ObjKey, Arc<Inflight>>>,
}

/// Owner of the shard replica sets. Clients connect via
/// [`ShardedServer::client`]; dropping the server shuts every replica down.
pub struct ShardedServer {
    sets: Vec<ReplicaSet>,
    counters: Arc<SharedCounters>,
    coalescer: Arc<Coalescer>,
    events: Arc<FleetEventLog>,
    model: NetworkModel,
    cfg: ShardedConfig,
}

/// RAII handle returned by [`ShardedServer::stall_shard`]: the replica
/// stays unresponsive until this is dropped (or [`StallGuard::release`] is
/// called).
pub struct StallGuard {
    _tx: SyncSender<()>,
}

impl StallGuard {
    /// Unblock the stalled replica.
    pub fn release(self) {}
}

impl ShardedServer {
    /// Spawn `cfg.shards` replica sets with the given cost model.
    pub fn spawn(cfg: ShardedConfig, model: NetworkModel) -> Self {
        let counters = Arc::new(SharedCounters::default());
        let events = Arc::new(FleetEventLog::default());
        let replicas = cfg.replica.replica_count();
        let sets = (0..cfg.shards.max(1))
            .map(|shard| {
                let shared = Arc::new(crate::replica::ReplicaShared::new(replicas));
                let channels: Vec<(SyncSender<ReplicaRequest>, Receiver<ReplicaRequest>)> =
                    (0..replicas).map(|_| sync_channel(256)).collect();
                let txs: Vec<SyncSender<ReplicaRequest>> =
                    channels.iter().map(|(tx, _)| tx.clone()).collect();
                let joins = channels
                    .into_iter()
                    .enumerate()
                    .map(|(r, (_, rx))| {
                        let peer = if replicas > 1 {
                            let p = (r + 1) % replicas;
                            Some((p, txs[p].clone()))
                        } else {
                            None
                        };
                        let shared = Arc::clone(&shared);
                        let counters = Arc::clone(&counters);
                        let events = Arc::clone(&events);
                        let replica_cfg = cfg.replica;
                        let join = std::thread::Builder::new()
                            .name(format!("cards-shard-{shard}-r{r}"))
                            .spawn(move || {
                                replica_loop(
                                    shard as u32,
                                    r,
                                    rx,
                                    peer,
                                    shared,
                                    counters,
                                    events,
                                    replica_cfg,
                                )
                            })
                            .expect("spawn shard replica");
                        Mutex::new(Some(join))
                    })
                    .collect();
                ReplicaSet { txs, shared, joins }
            })
            .collect();
        ShardedServer {
            sets,
            counters,
            coalescer: Arc::new(Coalescer::default()),
            events,
            model,
            cfg,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.sets.len()
    }

    /// Replicas per shard.
    pub fn replica_count(&self) -> usize {
        self.cfg.replica.replica_count()
    }

    /// Connect a new client. Each worker VM owns one.
    pub fn client(&self) -> ShardedClient {
        ShardedClient {
            shards: self
                .sets
                .iter()
                .map(|s| ClientShard {
                    txs: s.txs.clone(),
                    shared: Arc::clone(&s.shared),
                    buf: BTreeMap::new(),
                    window: VecDeque::new(),
                })
                .collect(),
            coalescer: Arc::clone(&self.coalescer),
            counters: Arc::clone(&self.counters),
            events: Arc::clone(&self.events),
            model: self.model,
            cfg: self.cfg,
            stats: NetStats::default(),
            pending_faults: Cell::new(FaultEvents::default()),
            ctx: TraceContext::NONE,
            tap: WireTap::new(self.cfg.tap_capacity),
            slog: ServerSpanLog::new(self.cfg.span_log_capacity),
            incidents: RefCell::new(Vec::new()),
        }
    }

    /// Shared cross-client counters.
    pub fn sharded_stats(&self) -> ShardedStats {
        self.counters.snapshot()
    }

    /// The shared replica-lifecycle / cross-client event log
    /// (interleaving-dependent; counters-region truth only).
    pub fn fleet_events(&self) -> &FleetEventLog {
        &self.events
    }

    fn control(
        &self,
        shard: usize,
        replica: usize,
        make: impl FnOnce(SyncSender<ReplicaResponse>) -> ReplicaRequest,
    ) {
        let (tx, rx) = sync_channel(1);
        if self.sets[shard].txs[replica].send(make(tx)).is_ok() {
            let _ = rx.recv();
        }
    }

    /// Index of the replica currently serving shard `i`.
    pub fn active_replica(&self, i: usize) -> usize {
        self.sets[i].shared.active_idx()
    }

    /// Crash the active replica of shard `i`: its unacked objects are
    /// dropped and its generation bumps, exactly as
    /// [`crate::chaos::ChaosTransport`]'s crash/restart phase — but
    /// shard-scoped and caller-triggered.
    pub fn crash_shard(&self, i: usize) {
        let active = self.sets[i].shared.active_idx();
        self.control(i, active, ReplicaRequest::Crash);
    }

    /// Kill the **active** replica of shard `i`, as if that server machine
    /// died. With a live backup, clients fail over (epoch-fenced takeover);
    /// once every replica is dead, operations surface
    /// [`NetError::Disconnected`] deterministically.
    pub fn kill_shard(&self, i: usize) {
        let active = self.sets[i].shared.active_idx();
        self.sets[i].kill(active);
    }

    /// Kill the current standby replica of shard `i` (no-op when the shard
    /// is unreplicated).
    pub fn kill_backup(&self, i: usize) {
        let set = &self.sets[i];
        if set.txs.len() < 2 {
            return;
        }
        let backup = (set.shared.active_idx() + 1) % set.txs.len();
        set.kill(backup);
    }

    /// Kill one specific replica of shard `i`.
    pub fn kill_replica(&self, i: usize, r: usize) {
        self.sets[i].kill(r);
    }

    /// Hold the active replica of shard `i` unresponsive until the returned
    /// guard is dropped. Requests queue behind the stall; used to force
    /// deterministic request overlap (coalescer, hedging, health-timeout
    /// failover) in tests and fault campaigns.
    pub fn stall_shard(&self, i: usize) -> StallGuard {
        let active = self.sets[i].shared.active_idx();
        self.stall_replica(i, active)
    }

    /// Stall the current standby replica of shard `i`.
    pub fn stall_backup(&self, i: usize) -> StallGuard {
        let set = &self.sets[i];
        let r = if set.txs.len() < 2 {
            set.shared.active_idx()
        } else {
            (set.shared.active_idx() + 1) % set.txs.len()
        };
        self.stall_replica(i, r)
    }

    /// Stall one specific replica of shard `i`.
    pub fn stall_replica(&self, i: usize, r: usize) -> StallGuard {
        let (tx, rx) = sync_channel::<()>(1);
        let _ = self.sets[i].txs[r].send(ReplicaRequest::Stall(rx));
        StallGuard { _tx: tx }
    }

    /// Per-DS checksums over the full sharded store (active replicas): the
    /// quiescence oracle's observable. Digests are folded in global key
    /// order, so the result is independent of shard count, replica count
    /// and arrival interleaving.
    pub fn digest(&self) -> BTreeMap<u32, u64> {
        let mut all: Vec<(ObjKey, u64)> = Vec::new();
        for set in &self.sets {
            // Prefer the active replica; if its channel is already gone
            // (killed before any client op forced a takeover), any
            // surviving replica holds the flushed state.
            let active = set.shared.active_idx();
            let order = (0..set.txs.len()).map(|off| (active + off) % set.txs.len());
            for r in order {
                let (tx, rx) = sync_channel(1);
                if set.txs[r].send(ReplicaRequest::Digest(tx)).is_err() {
                    continue;
                }
                if let Ok(ReplicaResponse::Digest(v)) = rx.recv() {
                    all.extend(v);
                    break;
                }
            }
        }
        all.sort_unstable_by_key(|(k, _)| *k);
        let mut per_ds: BTreeMap<u32, u64> = BTreeMap::new();
        for (key, h) in all {
            let acc = per_ds.entry(key.ds).or_insert(0xcbf2_9ce4_8422_2325);
            *acc = mix64(*acc ^ key.index ^ h);
        }
        per_ds
    }
}

impl Drop for ShardedServer {
    fn drop(&mut self) {
        for set in &self.sets {
            for tx in &set.txs {
                let _ = tx.send(ReplicaRequest::Shutdown);
            }
            for j in &set.joins {
                if let Ok(mut slot) = j.lock() {
                    if let Some(h) = slot.take() {
                        let _ = h.join();
                    }
                }
            }
        }
    }
}

/// FNV-1a over the payload: cheap, deterministic per-object digest.
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer (shard selection, digest folding).
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One departed-but-unacknowledged train. The payload is retained until
/// the ack arrives so a failover mid-flight can replay it against the new
/// primary (train application is idempotent: same keys, same bytes).
struct PendingTrain {
    rx: Receiver<ReplicaResponse>,
    objs: Vec<(ObjKey, Vec<u8>)>,
}

struct ClientShard {
    txs: Vec<SyncSender<ReplicaRequest>>,
    shared: Arc<crate::replica::ReplicaShared>,
    /// Pending writeback buffer: read-your-writes store for keys whose
    /// train has not departed yet (BTreeMap: deterministic departure
    /// order).
    buf: BTreeMap<ObjKey, Vec<u8>>,
    /// Departed-but-unacknowledged trains, oldest first.
    window: VecDeque<PendingTrain>,
}

/// Client half of the sharded tier: one per worker VM. Implements
/// [`Transport`] with coalesced fetches, batched windowed writebacks, and
/// epoch-fenced failover across each shard's replica set.
pub struct ShardedClient {
    shards: Vec<ClientShard>,
    coalescer: Arc<Coalescer>,
    counters: Arc<SharedCounters>,
    events: Arc<FleetEventLog>,
    model: NetworkModel,
    cfg: ShardedConfig,
    stats: NetStats,
    /// Fault events this client produced since the runtime last drained
    /// them (failovers it initiated, hedges it sent, fences it hit).
    pending_faults: Cell<FaultEvents>,
    ctx: TraceContext,
    /// Client-edge wire tap (deterministic per client, like the modeled
    /// stats: one send/recv pair per facade operation).
    tap: WireTap,
    /// Deterministic server-side decomposition of every modeled charge.
    slog: ServerSpanLog,
    /// Takeovers this client performed, on its modeled clock (interior
    /// mutability: `failover` runs behind `&self`).
    incidents: RefCell<Vec<FailoverIncident>>,
}

impl ShardedClient {
    fn shard_of(&self, key: ObjKey) -> usize {
        (mix64(key.index ^ (key.ds as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)) as usize)
            % self.shards.len()
    }

    /// Cross-client counters (coalescing, trains, crashes, failovers).
    pub fn sharded_stats(&self) -> ShardedStats {
        self.counters.snapshot()
    }

    /// This client's deterministic server-side span log.
    pub fn server_span_log(&self) -> &ServerSpanLog {
        &self.slog
    }

    /// Takeovers this client performed, in the order it performed them.
    pub fn incidents(&self) -> Vec<FailoverIncident> {
        self.incidents.borrow().clone()
    }

    /// The shared fleet event log this client reports joins/hedges into.
    pub fn fleet_events(&self) -> &FleetEventLog {
        &self.events
    }

    /// Record one server-side span under the current context and fold it
    /// into the shard's gauges.
    fn span(&mut self, shard: usize, kind: ServerSpanKind, cycles: u64, bytes: u64, depth: u64) {
        self.slog.record(ServerSpan {
            ctx: self.ctx,
            shard: shard as u32,
            kind,
            cycles,
            bytes,
            depth,
        });
        self.slog.gauges(shard as u32).server_cycles += cycles;
    }

    fn note_fault(&self, f: impl FnOnce(&mut FaultEvents)) {
        let mut ev = self.pending_faults.get();
        f(&mut ev);
        self.pending_faults.set(ev);
    }

    /// Epoch-fenced takeover, serialized per shard. Returns Ok once the
    /// shard has a live active replica again (whether this client or a
    /// racing one performed the promotion), Err when no standby is left.
    fn failover(&self, shard: usize) -> Result<(), NetError> {
        let set = &self.shards[shard];
        self.counters
            .failover_attempts
            .fetch_add(1, Ordering::Relaxed);
        let _guard = set.shared.failover_lock.lock().expect("failover lock");
        let cur = set.shared.active_idx();
        if set.shared.alive[cur].load(Ordering::SeqCst) {
            // A racing client already promoted a standby (or the suspicion
            // was resolved); nothing to do under the lock.
            return Ok(());
        }
        let n = set.txs.len();
        let standby = (1..n)
            .map(|off| (cur + off) % n)
            .find(|&r| set.shared.alive[r].load(Ordering::SeqCst));
        let Some(target) = standby else {
            return Err(NetError::Disconnected);
        };
        // Fence first: writes stamped with the old epoch bounce from every
        // replica before the standby even learns of the takeover.
        let fence = set.shared.fencing_epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let (tx, rx) = sync_channel(1);
        if set.txs[target]
            .send(ReplicaRequest::TakeOver { reply: tx })
            .is_err()
        {
            set.shared.alive[target].store(false, Ordering::SeqCst);
            return Err(NetError::Disconnected);
        }
        // FIFO drain: by the time this ack arrives the standby has applied
        // every delta the old primary shipped (its journal is replayed).
        if rx.recv().is_err() {
            set.shared.alive[target].store(false, Ordering::SeqCst);
            return Err(NetError::Disconnected);
        }
        set.shared.active.store(target as u64, Ordering::SeqCst);
        // Bump the shard generation: the runtime's crash watch replays its
        // client-side journal, covering any bounded replication lag.
        set.shared.generation.fetch_add(1, Ordering::SeqCst);
        self.counters.failovers.fetch_add(1, Ordering::Relaxed);
        self.note_fault(|ev| ev.failovers += 1);
        // The whole handshake runs at one modeled instant (failover costs
        // no modeled cycles); the incident's phase sequence is the
        // protocol order demote → fence bump → handshake → drain → resume.
        self.incidents.borrow_mut().push(FailoverIncident {
            shard: shard as u32,
            fence,
            from: cur as u32,
            to: target as u32,
            at_cycles: self.stats.cycles,
            trace: self.ctx.trace,
        });
        Ok(())
    }

    /// Route one request to the shard's active replica, retrying through
    /// fences and failovers until it sticks or no replica is left.
    fn call(
        &self,
        shard: usize,
        mut make: impl FnMut(u64, SyncSender<ReplicaResponse>) -> ReplicaRequest,
    ) -> Result<ReplicaResponse, NetError> {
        let set = &self.shards[shard];
        for _ in 0..FAILOVER_RETRY_CAP {
            let active = set.shared.active_idx();
            if !set.shared.alive[active].load(Ordering::SeqCst) {
                self.failover(shard)?;
                continue;
            }
            let fence = set.shared.fencing_epoch.load(Ordering::SeqCst);
            let (tx, rx) = sync_channel(1);
            if set.txs[active].send(make(fence, tx)).is_err() {
                set.shared.alive[active].store(false, Ordering::SeqCst);
                self.failover(shard)?;
                continue;
            }
            let resp = match self.cfg.replica.health_timeout {
                Some(t) => rx.recv_timeout(t).map_err(|_| ()),
                None => rx.recv().map_err(|_| ()),
            };
            match resp {
                Ok(ReplicaResponse::Fenced) => {
                    self.note_fault(|ev| ev.fenced += 1);
                    // Re-read fence/active and retry; if the shard is mid
                    // takeover the failover lock below synchronizes us.
                    self.failover(shard)?;
                }
                Ok(r) => return Ok(r),
                Err(()) => {
                    // Disconnect or health timeout: declare the active
                    // replica suspect and promote a standby.
                    set.shared.alive[active].store(false, Ordering::SeqCst);
                    self.failover(shard)?;
                }
            }
        }
        Err(NetError::Disconnected)
    }

    /// One wire fetch (the coalescing leader's transfer), with optional
    /// hedging against the backup when the primary is slow.
    fn wire_fetch(&self, key: ObjKey) -> Result<Vec<u8>, NetError> {
        self.counters.wire_fetches.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard_of(key);
        let set = &self.shards[shard];
        for _ in 0..FAILOVER_RETRY_CAP {
            let active = set.shared.active_idx();
            if !set.shared.alive[active].load(Ordering::SeqCst) {
                self.failover(shard)?;
                continue;
            }
            let (tx, rx) = sync_channel::<ReplicaResponse>(2);
            if set.txs[active]
                .send(ReplicaRequest::Fetch(key, tx.clone()))
                .is_err()
            {
                drop(tx);
                set.shared.alive[active].store(false, Ordering::SeqCst);
                self.failover(shard)?;
                continue;
            }
            let resp: Result<ReplicaResponse, ()> = match self.cfg.replica.hedge_after {
                Some(hedge_after) if set.txs.len() > 1 => {
                    match rx.recv_timeout(hedge_after) {
                        Ok(r) => {
                            drop(tx);
                            Ok(r)
                        }
                        Err(RecvTimeoutError::Disconnected) => {
                            drop(tx);
                            Err(())
                        }
                        Err(RecvTimeoutError::Timeout) => {
                            // Hedge gate: only race the backup while no
                            // failover has ever fenced the shard and the
                            // backup has consumed every shipped epoch —
                            // then its answer cannot be stale for a
                            // single-writer keyspace.
                            let backup = (active + 1) % set.txs.len();
                            let safe = set.shared.fencing_epoch.load(Ordering::SeqCst) == 0
                                && set.shared.backup_caught_up()
                                && set.shared.alive[backup].load(Ordering::SeqCst);
                            let hedged = safe
                                && set.txs[backup]
                                    .send(ReplicaRequest::Fetch(key, tx.clone()))
                                    .is_ok();
                            drop(tx);
                            if hedged {
                                self.counters.hedged_fetches.fetch_add(1, Ordering::Relaxed);
                                self.note_fault(|ev| ev.hedged += 1);
                                match rx.recv() {
                                    Ok(r) => {
                                        if let ReplicaResponse::Data { from, .. } = &r {
                                            if *from == active {
                                                self.counters
                                                    .hedge_wasted
                                                    .fetch_add(1, Ordering::Relaxed);
                                                self.note_fault(|ev| ev.hedge_wasted += 1);
                                                self.events.push(FleetEvent::HedgeWaste {
                                                    shard: shard as u32,
                                                });
                                            } else {
                                                self.events.push(FleetEvent::HedgeWin {
                                                    shard: shard as u32,
                                                    from: *from as u32,
                                                });
                                            }
                                        }
                                        Ok(r)
                                    }
                                    Err(_) => Err(()),
                                }
                            } else {
                                // No safe hedge: fall back to the plain
                                // wait (health timeout if configured).
                                match self.cfg.replica.health_timeout {
                                    Some(t) => rx.recv_timeout(t).map_err(|_| ()),
                                    None => rx.recv().map_err(|_| ()),
                                }
                            }
                        }
                    }
                }
                _ => {
                    drop(tx);
                    match self.cfg.replica.health_timeout {
                        Some(t) => rx.recv_timeout(t).map_err(|_| ()),
                        None => rx.recv().map_err(|_| ()),
                    }
                }
            };
            match resp {
                Ok(ReplicaResponse::Data { bytes: Some(b), .. }) => return Ok(b),
                Ok(ReplicaResponse::Data { bytes: None, .. }) => {
                    return Err(NetError::NotFound(key))
                }
                Ok(_) => return Err(NetError::Disconnected),
                Err(()) => {
                    set.shared.alive[active].store(false, Ordering::SeqCst);
                    self.failover(shard)?;
                }
            }
        }
        Err(NetError::Disconnected)
    }

    /// Fetch through the coalescer: first-comer leads the transfer,
    /// concurrent callers for the same key follow its result.
    fn coalesced_fetch(&self, key: ObjKey) -> Result<Vec<u8>, NetError> {
        let (entry, leader) = {
            let mut map = self.coalescer.inflight.lock().expect("coalescer lock");
            match map.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => (Arc::clone(e.get()), false),
                std::collections::hash_map::Entry::Vacant(v) => {
                    let e = Arc::new(Inflight::new(self.ctx));
                    v.insert(Arc::clone(&e));
                    (e, true)
                }
            }
        };
        if leader {
            let result = self.wire_fetch(key);
            {
                let mut done = entry.done.lock().expect("inflight lock");
                *done = Some(result.clone());
                entry.cv.notify_all();
            }
            self.coalescer
                .inflight
                .lock()
                .expect("coalescer lock")
                .remove(&key);
            result
        } else {
            self.counters.coalesced_hits.fetch_add(1, Ordering::Relaxed);
            // Who led vs who joined is interleaving truth: record it in
            // the shared event log only, never in the per-client span log
            // (whose decomposition must be identical either way).
            self.events.push(FleetEvent::CoalesceJoin {
                shard: self.shard_of(key) as u32,
                leader: entry.leader_ctx,
                follower: self.ctx,
            });
            let mut done = entry.done.lock().expect("inflight lock");
            while done.is_none() {
                done = entry.cv.wait(done).expect("inflight wait");
            }
            done.clone().expect("published above")
        }
    }

    fn fetch_inner(&mut self, key: ObjKey, batched: bool) -> Result<Fetched, NetError> {
        let shard = self.shard_of(key);
        let op = if batched {
            WireOp::FetchBatched
        } else {
            WireOp::Fetch
        };
        // Read-your-writes: a buffered put not yet departed must serve
        // fetches (the runtime refetches objects it just evicted).
        if let Some(bytes) = self.shards[shard].buf.get(&key) {
            let bytes = bytes.clone();
            let cycles = self.model.per_msg_cpu;
            self.stats.fetches += 1;
            self.stats.bytes_fetched += bytes.len() as u64;
            self.stats.cycles += cycles;
            // Served from the pending buffer: no server phase ran, the
            // whole charge is residue.
            self.slog.charge(cycles);
            self.slog.add_residue(cycles);
            self.slog.gauges(shard as u32).ops += 1;
            return Ok(Fetched { bytes, cycles });
        }
        self.tap
            .record(WireDir::Send, op, key.ds, key.index, 0, true, self.ctx);
        let bytes = match self.coalesced_fetch(key) {
            Ok(b) => b,
            Err(e) => {
                self.tap
                    .record(WireDir::Recv, op, key.ds, key.index, 0, false, self.ctx);
                return Err(e);
            }
        };
        // Leader or follower, hedged or not, the modeled charge is
        // identical: the modeled clock is per-worker virtual time, so
        // accounting must not depend on which thread or replica won the
        // race (see module docs).
        let cycles = if batched {
            self.model.per_msg_cpu + self.model.wire_cycles(bytes.len() as u64)
        } else {
            self.model.fetch_cost(bytes.len() as u64)
        };
        self.stats.fetches += 1;
        self.stats.bytes_fetched += bytes.len() as u64;
        self.stats.cycles += cycles;
        self.tap.record(
            WireDir::Recv,
            op,
            key.ds,
            key.index,
            bytes.len() as u64,
            true,
            self.ctx,
        );
        // Decompose the charge into server-side phases: queue wait (zero
        // modeled cycles; depth = this client's outstanding trains),
        // replica apply CPU, and wire serialization. Demand fetches also
        // carry one link latency, which no server phase accounts for —
        // that is the residue.
        let wire = self.model.wire_cycles(bytes.len() as u64);
        let depth = self.shards[shard].window.len() as u64;
        self.slog.charge(cycles);
        self.span(shard, ServerSpanKind::Queue, 0, 0, depth);
        self.span(shard, ServerSpanKind::Apply, self.model.per_msg_cpu, 0, 0);
        self.span(shard, ServerSpanKind::Transfer, wire, bytes.len() as u64, 0);
        self.slog
            .add_residue(cycles - self.model.per_msg_cpu - wire);
        let g = self.slog.gauges(shard as u32);
        g.ops += 1;
        g.queue_depth.observe(depth);
        Ok(Fetched { bytes, cycles })
    }

    /// Send one train to the shard's active replica without waiting for
    /// the ack; the payload is retained in the returned handle for replay.
    fn send_train(
        &self,
        shard: usize,
        mut objs: Vec<(ObjKey, Vec<u8>)>,
    ) -> Result<PendingTrain, NetError> {
        let set = &self.shards[shard];
        for _ in 0..FAILOVER_RETRY_CAP {
            let active = set.shared.active_idx();
            if !set.shared.alive[active].load(Ordering::SeqCst) {
                self.failover(shard)?;
                continue;
            }
            let fence = set.shared.fencing_epoch.load(Ordering::SeqCst);
            let (tx, rx) = sync_channel(1);
            let retained = objs.clone();
            match set.txs[active].send(ReplicaRequest::Train {
                objs,
                fence,
                reply: tx,
            }) {
                Ok(()) => return Ok(PendingTrain { rx, objs: retained }),
                Err(std::sync::mpsc::SendError(msg)) => {
                    // The channel hands the message back: recover the
                    // payload and fail over.
                    if let ReplicaRequest::Train { objs: o, .. } = msg {
                        objs = o;
                    } else {
                        unreachable!("train send returns a train");
                    }
                    set.shared.alive[active].store(false, Ordering::SeqCst);
                    self.failover(shard)?;
                }
            }
        }
        Err(NetError::Disconnected)
    }

    /// Wait for one train's ack, replaying it through failovers/fences
    /// until the (idempotent) train sticks on a live active replica.
    fn await_train(&self, shard: usize, mut train: PendingTrain) -> Result<(), NetError> {
        let set = &self.shards[shard];
        for _ in 0..FAILOVER_RETRY_CAP {
            let resp = match self.cfg.replica.health_timeout {
                Some(t) => train.rx.recv_timeout(t).map_err(|_| ()),
                None => train.rx.recv().map_err(|_| ()),
            };
            match resp {
                Ok(ReplicaResponse::Done) => return Ok(()),
                Ok(ReplicaResponse::Fenced) => {
                    self.note_fault(|ev| ev.fenced += 1);
                    self.failover(shard)?;
                }
                Ok(_) => return Err(NetError::Disconnected),
                Err(()) => {
                    let active = set.shared.active_idx();
                    set.shared.alive[active].store(false, Ordering::SeqCst);
                    self.failover(shard)?;
                }
            }
            train = self.send_train(shard, std::mem::take(&mut train.objs))?;
        }
        Err(NetError::Disconnected)
    }

    /// Seal the shard's pending buffer into a train and send it without
    /// waiting for the ack (the window bounds how far ahead we run).
    /// Returns the modeled cycles of the departure.
    fn depart_train(&mut self, shard: usize) -> Result<u64, NetError> {
        if self.shards[shard].buf.is_empty() {
            return Ok(0);
        }
        let objs: Vec<(ObjKey, Vec<u8>)> = std::mem::take(&mut self.shards[shard].buf)
            .into_iter()
            .collect();
        let members = objs.len() as u64;
        let train_bytes: u64 = objs.iter().map(|(_, b)| b.len() as u64).sum();
        let pending = self.send_train(shard, objs)?;
        self.shards[shard].window.push_back(pending);
        // One message's CPU cost per train; the per-object wire cycles
        // were charged when each object was buffered.
        let cycles = self.model.per_msg_cpu;
        self.stats.cycles += cycles;
        self.slog.charge(cycles);
        self.span(
            shard,
            ServerSpanKind::TrainFlush,
            cycles,
            train_bytes,
            members,
        );
        let g = self.slog.gauges(shard as u32);
        g.ops += 1;
        g.train_size.observe(members);
        if self.shards[shard].window.len() > self.cfg.window.max(1) {
            // This departure will stall on the oldest outstanding ack:
            // the request window is saturated (anomaly trigger fodder).
            self.note_fault(|ev| ev.queue_buildup += 1);
        }
        let shipped = self.shards[shard].shared.shipped.load(Ordering::SeqCst);
        let applied = self.shards[shard].shared.applied.load(Ordering::SeqCst);
        if shipped.saturating_sub(applied) > self.cfg.replica.max_ship_lag {
            // Interleaving-dependent observation (feeds stats/triggers,
            // never asserted): replication is at or past its lag bound.
            self.note_fault(|ev| ev.lag_breach += 1);
        }
        while self.shards[shard].window.len() > self.cfg.window.max(1) {
            let oldest = self.shards[shard].window.pop_front().expect("nonempty");
            self.await_train(shard, oldest)?;
        }
        Ok(cycles)
    }

    /// Drain every outstanding train ack on every shard.
    fn drain_window(&mut self) -> Result<(), NetError> {
        for shard in 0..self.shards.len() {
            while let Some(pending) = self.shards[shard].window.pop_front() {
                self.await_train(shard, pending)?;
            }
        }
        Ok(())
    }
}

impl Transport for ShardedClient {
    fn fetch(&mut self, key: ObjKey) -> Result<Fetched, NetError> {
        self.fetch_inner(key, false)
    }

    fn fetch_batched(&mut self, key: ObjKey) -> Result<Fetched, NetError> {
        self.fetch_inner(key, true)
    }

    fn rtt_cost(&self) -> u64 {
        self.model.base_latency + self.model.per_msg_cpu
    }

    fn put(&mut self, key: ObjKey, data: &[u8]) -> Result<u64, NetError> {
        let shard = self.shard_of(key);
        // Serialization cost per object; the train charges one message CPU
        // for the whole batch on departure.
        let mut cycles = self.model.wire_cycles(data.len() as u64);
        self.stats.writebacks += 1;
        self.stats.bytes_written += data.len() as u64;
        self.stats.cycles += cycles;
        self.tap.record(
            WireDir::Send,
            WireOp::Put,
            key.ds,
            key.index,
            data.len() as u64,
            true,
            self.ctx,
        );
        // Train membership: the put's wire serialization is its share of
        // the train it will ride, attributed to the issuing context now.
        self.slog.charge(cycles);
        self.span(
            shard,
            ServerSpanKind::Transfer,
            cycles,
            data.len() as u64,
            0,
        );
        self.slog.gauges(shard as u32).ops += 1;
        self.shards[shard].buf.insert(key, data.to_vec());
        if self.shards[shard].buf.len() >= self.cfg.train_len.max(1) {
            cycles += self.depart_train(shard)?;
        }
        self.tap.record(
            WireDir::Recv,
            WireOp::Put,
            key.ds,
            key.index,
            0,
            true,
            self.ctx,
        );
        Ok(cycles)
    }

    fn remove(&mut self, key: ObjKey) -> Result<u64, NetError> {
        let shard = self.shard_of(key);
        self.shards[shard].buf.remove(&key);
        self.tap.record(
            WireDir::Send,
            WireOp::Remove,
            key.ds,
            key.index,
            0,
            true,
            self.ctx,
        );
        match self.call(shard, |fence, tx| ReplicaRequest::Remove {
            key,
            fence,
            reply: tx,
        }) {
            Ok(ReplicaResponse::Done) => {
                self.stats.cycles += self.model.per_msg_cpu;
                self.slog.charge(self.model.per_msg_cpu);
                self.span(shard, ServerSpanKind::Apply, self.model.per_msg_cpu, 0, 0);
                self.slog.gauges(shard as u32).ops += 1;
                self.tap.record(
                    WireDir::Recv,
                    WireOp::Remove,
                    key.ds,
                    key.index,
                    0,
                    true,
                    self.ctx,
                );
                Ok(self.model.per_msg_cpu)
            }
            other => {
                self.tap.record(
                    WireDir::Recv,
                    WireOp::Remove,
                    key.ds,
                    key.index,
                    0,
                    false,
                    self.ctx,
                );
                match other {
                    Err(e) => Err(e),
                    _ => Err(NetError::Disconnected),
                }
            }
        }
    }

    fn flush(&mut self) -> Result<u64, NetError> {
        self.tap
            .record(WireDir::Send, WireOp::Flush, 0, 0, 0, true, self.ctx);
        let mut cycles = 0;
        for shard in 0..self.shards.len() {
            cycles += self.depart_train(shard)?;
        }
        self.drain_window()?;
        for shard in 0..self.shards.len() {
            match self.call(shard, |fence, tx| ReplicaRequest::FlushAck {
                fence,
                reply: tx,
            })? {
                ReplicaResponse::Done => {}
                _ => return Err(NetError::Disconnected),
            }
        }
        // One logical barrier round trip (shards are flushed in parallel).
        cycles += self.model.base_latency + self.model.per_msg_cpu;
        self.stats.cycles += self.model.base_latency + self.model.per_msg_cpu;
        self.slog
            .charge(self.model.base_latency + self.model.per_msg_cpu);
        // The barrier is cluster-wide: one span, attributed to shard 0
        // with depth = shard count; its link latency is residue.
        self.span(
            0,
            ServerSpanKind::Barrier,
            self.model.per_msg_cpu,
            0,
            self.shards.len() as u64,
        );
        self.slog.add_residue(self.model.base_latency);
        self.tap
            .record(WireDir::Recv, WireOp::Flush, 0, 0, 0, true, self.ctx);
        Ok(cycles)
    }

    fn generation(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.shared.generation.load(Ordering::Relaxed))
            .sum()
    }

    fn contains(&self, key: ObjKey) -> bool {
        let shard = self.shard_of(key);
        if self.shards[shard].buf.contains_key(&key) {
            return true;
        }
        matches!(
            self.call(shard, |_, tx| ReplicaRequest::Contains(key, tx)),
            Ok(ReplicaResponse::Bool(true))
        )
    }

    fn stats(&self) -> NetStats {
        self.stats
    }

    fn remote_bytes(&self) -> u64 {
        let mut total = 0;
        for shard in 0..self.shards.len() {
            if let Ok(ReplicaResponse::Bytes(b)) =
                self.call(shard, |_, tx| ReplicaRequest::ResidentBytes(tx))
            {
                total += b;
            }
        }
        total
    }

    fn take_fault_events(&mut self) -> FaultEvents {
        self.pending_faults.take()
    }

    fn set_trace_context(&mut self, ctx: TraceContext) {
        self.ctx = ctx;
    }

    fn trace_context(&self) -> TraceContext {
        self.ctx
    }

    fn wire_tap(&self) -> Option<&WireTap> {
        Some(&self.tap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn key(ds: u32, index: u64) -> ObjKey {
        ObjKey { ds, index }
    }

    fn server(shards: usize) -> ShardedServer {
        ShardedServer::spawn(
            ShardedConfig {
                shards,
                ..ShardedConfig::default()
            },
            NetworkModel::default(),
        )
    }

    fn server_with(shards: usize, replica: ReplicaConfig) -> ShardedServer {
        ShardedServer::spawn(
            ShardedConfig {
                shards,
                replica,
                ..ShardedConfig::default()
            },
            NetworkModel::default(),
        )
    }

    #[test]
    fn round_trip_across_shards() {
        let srv = server(4);
        let mut c = srv.client();
        for i in 0..64u64 {
            c.put(key(1, i), &[i as u8; 128]).unwrap();
        }
        c.flush().unwrap();
        for i in 0..64u64 {
            let f = c.fetch(key(1, i)).unwrap();
            assert_eq!(f.bytes, vec![i as u8; 128]);
        }
        assert_eq!(c.remote_bytes(), 64 * 128);
        let s = srv.sharded_stats();
        assert!(s.trains >= 8, "64 puts at train_len=8 must form trains");
        assert_eq!(s.train_objects, 64);
    }

    #[test]
    fn pending_buffer_serves_read_your_writes() {
        let srv = server(2);
        let mut c = srv.client();
        // One put: below train_len, so it only lives in the client buffer.
        c.put(key(0, 7), &[9u8; 64]).unwrap();
        assert!(c.contains(key(0, 7)));
        let f = c.fetch(key(0, 7)).unwrap();
        assert_eq!(f.bytes, vec![9u8; 64]);
        // Nothing crossed the wire for it yet.
        assert_eq!(srv.sharded_stats().train_objects, 0);
        c.flush().unwrap();
        assert_eq!(srv.sharded_stats().train_objects, 1);
    }

    #[test]
    fn modeled_costs_are_deterministic_per_client() {
        let run = || {
            let srv = server(3);
            let mut c = srv.client();
            for i in 0..40u64 {
                c.put(key(2, i), &[1u8; 256]).unwrap();
            }
            c.flush().unwrap();
            for i in 0..40u64 {
                c.fetch(key(2, i)).unwrap();
            }
            c.stats()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn batched_writeback_is_cheaper_than_per_object_puts() {
        // Train: N * wire + per-train CPU  vs  N * (CPU + wire).
        let srv = server(1);
        let mut c = srv.client();
        let n = 8u64;
        let mut batched = 0;
        for i in 0..n {
            batched += c.put(key(0, i), &[5u8; 4096]).unwrap();
        }
        let per_object = n * NetworkModel::default().writeback_cost(4096);
        assert!(
            batched < per_object,
            "train cost {batched} must undercut {per_object}"
        );
    }

    #[test]
    fn stalled_shard_forces_coalescing() {
        let srv = server(1);
        let mut setup = srv.client();
        setup.put(key(0, 0), &[3u8; 512]).unwrap();
        setup.flush().unwrap();
        let gate = srv.stall_shard(0);
        let (mut a, mut b) = (srv.client(), srv.client());
        let ta = std::thread::spawn(move || a.fetch(key(0, 0)).unwrap().bytes);
        // Wait until A is committed as the coalescing leader (its wire
        // fetch is queued behind the stall), then start B.
        while srv.sharded_stats().wire_fetches == 0 {
            std::thread::yield_now();
        }
        let tb = std::thread::spawn(move || b.fetch(key(0, 0)).unwrap().bytes);
        // B must reach the follower path before we release the shard.
        while srv.sharded_stats().coalesced_hits == 0 {
            std::thread::yield_now();
        }
        gate.release();
        assert_eq!(ta.join().unwrap(), vec![3u8; 512]);
        assert_eq!(tb.join().unwrap(), vec![3u8; 512]);
        let s = srv.sharded_stats();
        assert_eq!(s.coalesced_hits, 1, "second miss must coalesce");
        assert_eq!(s.wire_fetches, 1, "only one transfer crosses the wire");
    }

    #[test]
    fn crash_drops_unacked_and_bumps_generation() {
        let srv = server(2);
        let mut c = srv.client();
        c.put(key(0, 1), &[1u8; 64]).unwrap();
        c.flush().unwrap(); // durable
        c.put(key(0, 2), &[2u8; 64]).unwrap();
        // Force the buffered put onto the server without acknowledging it.
        for shard in 0..2 {
            c.depart_train(shard).unwrap();
        }
        c.drain_window().unwrap();
        let g0 = c.generation();
        for i in 0..2 {
            srv.crash_shard(i);
        }
        assert_eq!(c.generation(), g0 + 2, "every crash bumps a generation");
        assert_eq!(c.fetch(key(0, 1)).unwrap().bytes, vec![1u8; 64]);
        assert_eq!(c.fetch(key(0, 2)), Err(NetError::NotFound(key(0, 2))));
        assert_eq!(srv.sharded_stats().dropped_objects, 1);
    }

    #[test]
    fn dead_replica_set_surfaces_disconnected_deterministically() {
        for _ in 0..8 {
            let srv = server(1);
            let mut c = srv.client();
            c.put(key(0, 0), &[1u8; 32]).unwrap();
            // Kill the whole replica set: backup first, then the active
            // primary, so no standby is left to fail over to.
            srv.kill_backup(0);
            srv.kill_shard(0);
            assert_eq!(c.fetch(key(9, 9)), Err(NetError::Disconnected));
            assert_eq!(c.flush(), Err(NetError::Disconnected));
            assert_eq!(c.remove(key(9, 9)), Err(NetError::Disconnected));
        }
    }

    #[test]
    fn killed_primary_fails_over_to_backup_with_journal_intact() {
        for _ in 0..4 {
            let srv = server(1);
            let mut c = srv.client();
            for i in 0..32u64 {
                c.put(key(0, i), &[i as u8; 64]).unwrap();
            }
            c.flush().unwrap();
            let g0 = c.generation();
            srv.kill_shard(0);
            // Every durable object survives on the promoted backup.
            for i in 0..32u64 {
                assert_eq!(c.fetch(key(0, i)).unwrap().bytes, vec![i as u8; 64]);
            }
            // Writes keep working against the new primary.
            c.put(key(1, 0), &[7u8; 16]).unwrap();
            c.flush().unwrap();
            assert_eq!(c.fetch(key(1, 0)).unwrap().bytes, vec![7u8; 16]);
            let s = srv.sharded_stats();
            assert_eq!(s.failovers, 1, "exactly one takeover");
            assert!(
                c.generation() > g0,
                "failover must bump the generation for the runtime's crash watch"
            );
            assert_eq!(srv.active_replica(0), 1);
        }
    }

    #[test]
    fn killed_backup_is_invisible_to_clients() {
        let srv = server(2);
        let mut c = srv.client();
        for i in 0..16u64 {
            c.put(key(0, i), &[i as u8; 32]).unwrap();
        }
        c.flush().unwrap();
        for i in 0..2 {
            srv.kill_backup(i);
        }
        for i in 0..16u64 {
            assert_eq!(c.fetch(key(0, i)).unwrap().bytes, vec![i as u8; 32]);
        }
        c.put(key(2, 0), &[9u8; 32]).unwrap();
        c.flush().unwrap();
        let s = srv.sharded_stats();
        assert_eq!(s.failovers, 0, "losing a standby must not fail over");
    }

    #[test]
    fn stalled_primary_with_health_timeout_is_demoted_and_fenced() {
        let srv = server_with(
            1,
            ReplicaConfig {
                health_timeout: Some(Duration::from_millis(25)),
                ..ReplicaConfig::default()
            },
        );
        let mut setup = srv.client();
        for i in 0..8u64 {
            setup.put(key(0, i), &[1u8; 32]).unwrap();
        }
        setup.flush().unwrap();
        let gate = srv.stall_shard(0);
        let mut c = srv.client();
        // The read times out on the stalled primary, demotes it, and the
        // promoted backup serves the (fully shipped) object.
        assert_eq!(c.fetch(key(0, 3)).unwrap().bytes, vec![1u8; 32]);
        assert_eq!(srv.active_replica(0), 1);
        // A write lands on the new primary under the bumped fence.
        c.put(key(3, 0), &[8u8; 32]).unwrap();
        c.flush().unwrap();
        // Wake the deposed primary: anything it still drains is fenced by
        // sender, and it must not corrupt the promoted store.
        gate.release();
        assert_eq!(c.fetch(key(3, 0)).unwrap().bytes, vec![8u8; 32]);
        let s = srv.sharded_stats();
        assert_eq!(s.failovers, 1);
        assert!(s.failover_attempts >= 1);
    }

    #[test]
    fn hedged_read_races_a_stalled_primary() {
        let srv = server_with(
            1,
            ReplicaConfig {
                hedge_after: Some(Duration::from_millis(5)),
                ..ReplicaConfig::default()
            },
        );
        let mut setup = srv.client();
        setup.put(key(0, 0), &[4u8; 128]).unwrap();
        setup.flush().unwrap();
        let gate = srv.stall_shard(0);
        let mut c = srv.client();
        // The primary is stalled, so only the hedge can answer — and the
        // request completes without releasing the stall.
        assert_eq!(c.fetch(key(0, 0)).unwrap().bytes, vec![4u8; 128]);
        let s = srv.sharded_stats();
        assert!(
            s.hedged_fetches >= 1,
            "stalled primary must trigger a hedge"
        );
        assert_eq!(s.failovers, 0, "hedging must not fail over");
        gate.release();
    }

    #[test]
    fn window_bounds_outstanding_trains() {
        let srv = ShardedServer::spawn(
            ShardedConfig {
                shards: 1,
                train_len: 1,
                window: 2,
                ..ShardedConfig::default()
            },
            NetworkModel::free(),
        );
        let mut c = srv.client();
        for i in 0..64u64 {
            c.put(key(0, i), &[0u8; 16]).unwrap();
            assert!(c.shards[0].window.len() <= 2, "window must stay bounded");
        }
        c.flush().unwrap();
        assert_eq!(srv.sharded_stats().train_objects, 64);
    }

    #[test]
    fn digest_is_shard_and_replica_count_independent() {
        let fill = |shards: usize, replicas: usize| {
            let srv = server_with(
                shards,
                ReplicaConfig {
                    replicas,
                    ..ReplicaConfig::default()
                },
            );
            let mut c = srv.client();
            for ds in 0..3u32 {
                for i in 0..50u64 {
                    c.put(key(ds, i), &[(ds as u8) ^ (i as u8); 96]).unwrap();
                }
            }
            c.flush().unwrap();
            srv.digest()
        };
        let a = fill(1, 2);
        let b = fill(4, 2);
        let c = fill(4, 1);
        assert_eq!(a, b, "digest must not depend on sharding");
        assert_eq!(b, c, "digest must not depend on replication");
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn server_span_log_cross_sum_matches_modeled_cycles() {
        let srv = server(3);
        let mut c = srv.client();
        for i in 0..40u64 {
            c.put(key(2, i), &[1u8; 256]).unwrap();
        }
        c.flush().unwrap();
        for i in 0..40u64 {
            c.fetch(key(2, i)).unwrap();
        }
        c.remove(key(2, 0)).unwrap();
        c.flush().unwrap();
        let log = c.server_span_log();
        log.check().unwrap();
        assert_eq!(
            log.remote_cycles(),
            c.stats().cycles,
            "every modeled cycle must be charged to the span log"
        );
        assert!(log.spans().iter().any(|s| s.kind == ServerSpanKind::Apply));
        assert!(log
            .spans()
            .iter()
            .any(|s| s.kind == ServerSpanKind::TrainFlush && s.depth > 0));
        assert!(log
            .spans()
            .iter()
            .any(|s| s.kind == ServerSpanKind::Barrier));
        assert!(log.residue() > 0, "link latency is unattributed residue");
        // Gauges cover every shard the client touched.
        assert!(!log.shards().is_empty());
        assert!(log.shards().values().all(|g| g.ops > 0));
    }

    #[test]
    fn span_log_is_deterministic_per_client() {
        let run = || {
            let srv = server(2);
            let mut c = srv.client();
            for i in 0..24u64 {
                c.put(key(1, i), &[3u8; 128]).unwrap();
            }
            c.flush().unwrap();
            for i in 0..24u64 {
                c.fetch(key(1, i)).unwrap();
            }
            (
                c.server_span_log().spans().to_vec(),
                c.server_span_log().residue(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn failover_records_an_incident_with_trace_identity() {
        let srv = server(1);
        let mut c = srv.client();
        c.put(key(0, 0), &[5u8; 64]).unwrap();
        c.flush().unwrap();
        c.set_trace_context(TraceContext { trace: 77, span: 2 });
        srv.kill_shard(0);
        assert_eq!(c.fetch(key(0, 0)).unwrap().bytes, vec![5u8; 64]);
        let incidents = c.incidents();
        assert_eq!(incidents.len(), 1);
        let inc = &incidents[0];
        assert_eq!(inc.shard, 0);
        assert_eq!(inc.fence, 1);
        assert_eq!((inc.from, inc.to), (0, 1));
        assert_eq!(inc.trace, 77, "incident carries the in-force trace id");
        // The takeover handshake drained on the standby and was logged.
        let summary = srv.fleet_events().summary();
        assert_eq!(summary.per_shard[&0].takeover_drains, 1);
    }

    #[test]
    fn client_tap_records_facade_operations() {
        let srv = ShardedServer::spawn(
            ShardedConfig {
                shards: 1,
                tap_capacity: 4,
                ..ShardedConfig::default()
            },
            NetworkModel::default(),
        );
        let mut c = srv.client();
        let ctx = TraceContext { trace: 5, span: 1 };
        c.set_trace_context(ctx);
        for i in 0..8u64 {
            c.put(key(0, i), &[1u8; 32]).unwrap();
        }
        c.flush().unwrap();
        let tap = c.wire_tap().unwrap();
        assert_eq!(tap.len(), 4, "ring stays at its configured cap");
        assert!(tap.dropped() > 0);
        assert!(
            tap.dropped_of(WireOp::Put) > 0,
            "drops are attributed per op"
        );
        assert!(tap.records().all(|r| r.ctx == ctx));
    }

    #[test]
    fn journal_ships_and_flush_barriers_land_in_the_event_log() {
        let srv = server(1);
        let mut c = srv.client();
        for i in 0..16u64 {
            c.put(key(0, i), &[2u8; 64]).unwrap();
        }
        c.flush().unwrap();
        let summary = srv.fleet_events().summary();
        let e = &summary.per_shard[&0];
        assert!(e.journal_ships >= 2, "trains + barrier ship to the backup");
        assert_eq!(e.flush_barriers, 1);
        assert_eq!(summary.dropped, 0);
    }

    #[test]
    fn digest_survives_failover_byte_identically() {
        let fill = |kill: bool| {
            let srv = server(2);
            let mut c = srv.client();
            for ds in 0..2u32 {
                for i in 0..40u64 {
                    c.put(key(ds, i), &[(ds as u8).wrapping_add(i as u8); 64])
                        .unwrap();
                }
            }
            c.flush().unwrap();
            if kill {
                for s in 0..2 {
                    srv.kill_shard(s);
                }
                // Touch each shard so the takeover actually happens.
                c.fetch(key(0, 0)).unwrap();
                c.fetch(key(1, 1)).unwrap();
            }
            srv.digest()
        };
        assert_eq!(fill(false), fill(true));
    }
}
