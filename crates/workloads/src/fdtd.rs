//! The `ftfdapml` workload: a Finite-Difference Time-Domain kernel with an
//! Anisotropic Perfectly-Matched-Layer boundary, modeled on PolyBench's
//! `fdtd-apml` (paper §5: 8 GB working set, 15 disjoint data structures —
//! the most of any PolyBench kernel, which is why the paper picks it).
//!
//! Fifteen f64 grids with static-control nested loops: coefficient grids
//! (read-only after init), field grids (updated each step), and PML
//! auxiliary grids. Neighbor accesses use `i±1`/`j±1` within interior
//! bounds, giving the strided pattern the remoting policies exploit.

use cards_ir::{BinOp, FuncId, FunctionBuilder, Module, Type};

use crate::util::*;

/// FDTD-APML parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FdtdParams {
    /// Grid extent (nx = ny = `size`).
    pub size: i64,
    /// Time steps.
    pub steps: i64,
}

impl Default for FdtdParams {
    fn default() -> Self {
        FdtdParams {
            size: 96,
            steps: 10,
        }
    }
}

impl FdtdParams {
    /// Tiny configuration for unit tests.
    pub fn test() -> Self {
        FdtdParams { size: 24, steps: 3 }
    }

    /// Approximate working-set bytes (15 grids of size²·8B).
    pub fn working_set_bytes(&self) -> u64 {
        15 * (self.size * self.size) as u64 * 8
    }
}

const NGRIDS: usize = 15;

/// Build the FDTD program; `main` returns a checksum over the field grids.
pub fn build(p: FdtdParams) -> (Module, FuncId) {
    let nx = p.size;
    let cells = nx * nx;
    let mut m = Module::new("ftfdapml");
    let mut b = FunctionBuilder::new("main", vec![], Type::I64);

    // 15 grids: 0..6 coefficients, 7..9 fields (ex, ey, hz), 10..14 PML aux.
    let mut g = Vec::with_capacity(NGRIDS);
    for _ in 0..NGRIDS {
        g.push(alloc_f64(&mut b, cells));
    }
    let (ex, ey, hz) = (g[7], g[8], g[9]);

    let (z, one) = (ic(0), ic(1));

    // --- init: coefficients from hashes, fields zero/impulse ---
    for (k, &grid) in g.iter().enumerate() {
        let salt = 0x11 + k as i64;
        b.counted_loop(z, ic(cells), one, |b, idx| {
            if !(7..10).contains(&k) {
                // coefficient/aux grids: small values in (0, 1]
                let h = hash_salted(b, idx, salt);
                let r = urem_const(b, h, 1000);
                let rf = to_f64(b, r);
                let v0 = b.bin(BinOp::FDiv, rf, fc(2000.0), Type::F64);
                let v = b.fadd(v0, fc(0.25));
                set_f64(b, grid, idx, v);
            } else {
                set_f64(b, grid, idx, fc(0.0));
            }
        });
    }
    // impulse at the grid center
    {
        let center = ic(cells / 2 + nx / 2);
        set_f64(&mut b, hz, center, fc(1.0));
    }

    // --- time stepping ---
    b.counted_loop(z, ic(p.steps), one, |b, _t| {
        // update ex: ex[i,j] += c0[i,j] * (hz[i,j] - hz[i,j-1])
        b.counted_loop(z, ic(nx), one, |b, i| {
            b.counted_loop(one, ic(nx), one, |b, j| {
                let row = b.mul(i, ic(nx));
                let idx = b.add(row, j);
                let jm1 = b.sub(idx, ic(1));
                let h1 = get_f64(b, hz, idx);
                let h0 = get_f64(b, hz, jm1);
                let dh = b.bin(BinOp::FSub, h1, h0, Type::F64);
                let c = get_f64(b, g[0], idx);
                let delta = b.fmul(c, dh);
                add_f64_at(b, ex, idx, delta);
                // PML auxiliary accumulation
                let a = get_f64(b, g[10], idx);
                let upd = b.fmul(a, delta);
                add_f64_at(b, g[11], idx, upd);
            });
        });
        // update ey: ey[i,j] -= c1[i,j] * (hz[i,j] - hz[i-1,j])
        b.counted_loop(one, ic(nx), one, |b, i| {
            b.counted_loop(z, ic(nx), one, |b, j| {
                let row = b.mul(i, ic(nx));
                let idx = b.add(row, j);
                let im1 = b.sub(idx, ic(nx));
                let h1 = get_f64(b, hz, idx);
                let h0 = get_f64(b, hz, im1);
                let dh = b.bin(BinOp::FSub, h1, h0, Type::F64);
                let c = get_f64(b, g[1], idx);
                let prod = b.fmul(c, dh);
                let neg = b.bin(BinOp::FSub, fc(0.0), prod, Type::F64);
                add_f64_at(b, ey, idx, neg);
                let a = get_f64(b, g[12], idx);
                let upd = b.fmul(a, neg);
                add_f64_at(b, g[13], idx, upd);
            });
        });
        // update hz: hz[i,j] = czm*hz + cxmh*(ey[i+1,j]-ey[i,j]) - cymh*(ex[i,j+1]-ex[i,j]) + bza
        b.counted_loop(z, ic(nx - 1), one, |b, i| {
            b.counted_loop(z, ic(nx - 1), one, |b, j| {
                let row = b.mul(i, ic(nx));
                let idx = b.add(row, j);
                let ip1 = b.add(idx, ic(nx));
                let jp1 = b.add(idx, ic(1));
                let czm = get_f64(b, g[2], idx);
                let cxmh = get_f64(b, g[3], idx);
                let cymh = get_f64(b, g[4], idx);
                let hcur = get_f64(b, hz, idx);
                let t0 = b.fmul(czm, hcur);
                let ey1 = get_f64(b, ey, ip1);
                let ey0 = get_f64(b, ey, idx);
                let dey = b.bin(BinOp::FSub, ey1, ey0, Type::F64);
                let t1 = b.fmul(cxmh, dey);
                let ex1 = get_f64(b, ex, jp1);
                let ex0 = get_f64(b, ex, idx);
                let dex = b.bin(BinOp::FSub, ex1, ex0, Type::F64);
                let t2 = b.fmul(cymh, dex);
                let bza = get_f64(b, g[14], idx);
                let s0 = b.fadd(t0, t1);
                let s1 = b.bin(BinOp::FSub, s0, t2, Type::F64);
                let damp = b.fmul(bza, fc(0.001));
                let hnew = b.fadd(s1, damp);
                set_f64(b, hz, idx, hnew);
                // boundary bookkeeping grids (czp, aux) read each step
                let czp = get_f64(b, g[5], idx);
                let aux = b.fmul(czp, hnew);
                set_f64(b, g[6], idx, aux);
            });
        });
    });

    // --- checksum over the field + aux grids ---
    let acc = AccI64::new(&mut b, 0);
    checksum_f64(&mut b, &acc, hz, cells);
    checksum_f64(&mut b, &acc, ex, cells);
    checksum_f64(&mut b, &acc, ey, cells);
    checksum_f64(&mut b, &acc, g[11], cells);
    checksum_f64(&mut b, &acc, g[13], cells);
    let out = acc.get(&mut b);
    b.ret(out);
    let main_f = m.add_function(b.finish());
    (m, main_f)
}

/// Native reference with identical arithmetic order.
pub fn reference(p: FdtdParams) -> i64 {
    let nx = p.size as usize;
    let cells = nx * nx;
    let mut g: Vec<Vec<f64>> = Vec::with_capacity(NGRIDS);
    for k in 0..NGRIDS {
        let salt = 0x11 + k as u64;
        let grid: Vec<f64> = (0..cells)
            .map(|idx| {
                if !(7..10).contains(&k) {
                    (splitmix64(idx as u64 ^ salt) % 1000) as f64 / 2000.0 + 0.25
                } else {
                    0.0
                }
            })
            .collect();
        g.push(grid);
    }
    g[9][cells / 2 + nx / 2] = 1.0;

    for _t in 0..p.steps {
        for i in 0..nx {
            for j in 1..nx {
                let idx = i * nx + j;
                let dh = g[9][idx] - g[9][idx - 1];
                let delta = g[0][idx] * dh;
                g[7][idx] += delta;
                let upd = g[10][idx] * delta;
                g[11][idx] += upd;
            }
        }
        for i in 1..nx {
            for j in 0..nx {
                let idx = i * nx + j;
                let dh = g[9][idx] - g[9][idx - nx];
                let neg = 0.0 - g[1][idx] * dh;
                g[8][idx] += neg;
                let upd = g[12][idx] * neg;
                g[13][idx] += upd;
            }
        }
        for i in 0..nx - 1 {
            for j in 0..nx - 1 {
                let idx = i * nx + j;
                let t0 = g[2][idx] * g[9][idx];
                let t1 = g[3][idx] * (g[8][idx + nx] - g[8][idx]);
                let t2 = g[4][idx] * (g[7][idx + 1] - g[7][idx]);
                let hnew = (t0 + t1) - t2 + g[14][idx] * 0.001;
                g[9][idx] = hnew;
                g[6][idx] = g[5][idx] * hnew;
            }
        }
    }
    let fold = |grid: &[f64]| -> i64 { grid.iter().map(|v| (v * 1000.0) as i64).sum() };
    fold(&g[9]) + fold(&g[7]) + fold(&g[8]) + fold(&g[11]) + fold(&g[13])
}
