//! Builder helpers shared by the workload kernels, plus the reference
//! implementation of the `hash64` intrinsic so native Rust references can
//! generate byte-identical synthetic data.

use cards_ir::{BinOp, CmpOp, FunctionBuilder, Intrinsic, Type, Value};

/// SplitMix64 finalizer — must match `cards_vm::splitmix64` exactly.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Allocate an `n`-element i64 heap array.
pub fn alloc_i64(b: &mut FunctionBuilder, n: i64) -> Value {
    b.alloc(b.iconst(n * 8), Type::I64)
}

/// Allocate an `n`-element f64 heap array.
pub fn alloc_f64(b: &mut FunctionBuilder, n: i64) -> Value {
    b.alloc(b.iconst(n * 8), Type::F64)
}

/// `arr[idx] : i64` load.
pub fn get_i64(b: &mut FunctionBuilder, arr: Value, idx: Value) -> Value {
    let p = b.gep_index(arr, Type::I64, idx);
    b.load(p, Type::I64)
}

/// `arr[idx] = v : i64` store.
pub fn set_i64(b: &mut FunctionBuilder, arr: Value, idx: Value, v: Value) {
    let p = b.gep_index(arr, Type::I64, idx);
    b.store(p, v, Type::I64);
}

/// `arr[idx] : f64` load.
pub fn get_f64(b: &mut FunctionBuilder, arr: Value, idx: Value) -> Value {
    let p = b.gep_index(arr, Type::F64, idx);
    b.load(p, Type::F64)
}

/// `arr[idx] = v : f64` store.
pub fn set_f64(b: &mut FunctionBuilder, arr: Value, idx: Value, v: Value) {
    let p = b.gep_index(arr, Type::F64, idx);
    b.store(p, v, Type::F64);
}

/// `arr[idx] += v` for i64 arrays.
pub fn add_i64_at(b: &mut FunctionBuilder, arr: Value, idx: Value, v: Value) {
    let p = b.gep_index(arr, Type::I64, idx);
    let cur = b.load(p, Type::I64);
    let nxt = b.add(cur, v);
    b.store(p, nxt, Type::I64);
}

/// `arr[idx] += v` for f64 arrays.
pub fn add_f64_at(b: &mut FunctionBuilder, arr: Value, idx: Value, v: Value) {
    let p = b.gep_index(arr, Type::F64, idx);
    let cur = b.load(p, Type::F64);
    let nxt = b.fadd(cur, v);
    b.store(p, nxt, Type::F64);
}

/// `hash64(x ^ salt)` — the synthetic data generator primitive.
pub fn hash_salted(b: &mut FunctionBuilder, x: Value, salt: i64) -> Value {
    let s = b.bin(BinOp::Xor, x, b.iconst(salt), Type::I64);
    b.intrin(Intrinsic::Hash64, vec![s])
}

/// Unsigned remainder by a positive constant.
pub fn urem_const(b: &mut FunctionBuilder, x: Value, m: i64) -> Value {
    b.bin(BinOp::URem, x, b.iconst(m), Type::I64)
}

/// Convert i64 -> f64.
pub fn to_f64(b: &mut FunctionBuilder, x: Value) -> Value {
    b.cast(cards_ir::CastOp::SiToFp, x, Type::F64)
}

/// Accumulator memory cell (stack slot) holding an i64, with update ops.
pub struct AccI64(pub Value);

impl AccI64 {
    /// New accumulator initialized to `init`.
    pub fn new(b: &mut FunctionBuilder, init: i64) -> Self {
        let slot = b.alloca(Type::I64);
        b.store(slot, b.iconst(init), Type::I64);
        AccI64(slot)
    }

    /// `acc += v`.
    pub fn add(&self, b: &mut FunctionBuilder, v: Value) {
        let cur = b.load(self.0, Type::I64);
        let nxt = b.add(cur, v);
        b.store(self.0, nxt, Type::I64);
    }

    /// Current value.
    pub fn get(&self, b: &mut FunctionBuilder) -> Value {
        b.load(self.0, Type::I64)
    }
}

/// Emit `if cond { then() }` with fall-through join; leaves the builder in
/// the join block.
pub fn if_then(b: &mut FunctionBuilder, cond: Value, then_blk: impl FnOnce(&mut FunctionBuilder)) {
    let t = b.new_block();
    let j = b.new_block();
    b.cond_br(cond, t, j);
    b.switch_to(t);
    then_blk(b);
    b.br(j);
    b.switch_to(j);
}

/// `min(x, const)` via compare+select.
pub fn min_const(b: &mut FunctionBuilder, x: Value, c: i64) -> Value {
    let cc = b.iconst(c);
    let lt = b.cmp(CmpOp::Slt, x, cc);
    b.select(lt, x, cc, Type::I64)
}

/// Fold an i64 array into a checksum accumulator: `acc += sum(arr[0..n])`.
pub fn checksum_i64(b: &mut FunctionBuilder, acc: &AccI64, arr: Value, n: i64) {
    let (z, one) = (b.iconst(0), b.iconst(1));
    b.counted_loop(z, b.iconst(n), one, |b, i| {
        let v = get_i64(b, arr, i);
        acc.add(b, v);
    });
}

/// Fold an f64 array into the checksum: `acc += (i64)(sum*1000) per elem`.
pub fn checksum_f64(b: &mut FunctionBuilder, acc: &AccI64, arr: Value, n: i64) {
    let (z, one) = (b.iconst(0), b.iconst(1));
    b.counted_loop(z, b.iconst(n), one, |b, i| {
        let v = get_f64(b, arr, i);
        let scaled = b.fmul(v, b.fconst(1000.0));
        let iv = b.cast(cards_ir::CastOp::FpToSi, scaled, Type::I64);
        acc.add(b, iv);
    });
}

/// Integer constant value (free function so it can appear as an argument
/// alongside `&mut FunctionBuilder` without borrow conflicts).
pub fn ic(v: i64) -> Value {
    Value::ConstInt(v)
}

/// Float constant value.
pub fn fc(v: f64) -> Value {
    Value::float(v)
}

/// Emit `while cond() { body() }` using stack slots for loop state (no
/// phis needed). Leaves the builder in the exit block.
pub fn while_loop(
    b: &mut FunctionBuilder,
    cond: impl FnOnce(&mut FunctionBuilder) -> Value,
    body: impl FnOnce(&mut FunctionBuilder),
) {
    let head = b.new_block();
    let body_b = b.new_block();
    let exit = b.new_block();
    b.br(head);
    b.switch_to(head);
    let c = cond(b);
    b.cond_br(c, body_b, exit);
    b.switch_to(body_b);
    body(b);
    b.br(head);
    b.switch_to(exit);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // fixed values so the VM intrinsic and this stay in lock-step
        assert_eq!(splitmix64(0), 0xe220a8397b1dcdaf);
        assert_eq!(splitmix64(1), 0x910a2dec89025cc1);
        assert_ne!(splitmix64(2), splitmix64(3));
    }
}
