//! The `analytics` workload: NYC-taxi-style trip analytics.
//!
//! The paper analyzes the 2014 NYC taxi-trip Kaggle dataset (16 GB, 31 GB
//! working set, 22 disjoint data structures). We cannot ship that dataset,
//! so trips are generated *inside the kernel* from a seeded hash — the
//! columnar layout, the query mix (group-bys, filters, histograms, a
//! two-table-ish OD sketch) and therefore the access patterns match; sizes
//! scale with [`TaxiParams::trips`]. The native reference below reproduces
//! the exact formulas for correctness checking.

use cards_ir::{CmpOp, FuncId, FunctionBuilder, Module, Type};

use crate::util::*;

/// Analytics workload parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaxiParams {
    /// Number of trips (paper: ~170M; default scaled down).
    pub trips: i64,
}

impl Default for TaxiParams {
    fn default() -> Self {
        TaxiParams { trips: 50_000 }
    }
}

impl TaxiParams {
    /// Tiny configuration for unit tests.
    pub fn test() -> Self {
        TaxiParams { trips: 2_000 }
    }

    /// Approximate working-set bytes (columns + filters + aggregates).
    pub fn working_set_bytes(&self) -> u64 {
        // 8 column arrays + 2 filtered arrays of n × 8B, plus ~16 KiB aggs.
        (10 * self.trips as u64) * 8 + 16 * 1024
    }
}

const NZONES: i64 = 256;
const NHOURS: i64 = 24;
const NHIST: i64 = 64;
const NPASS: i64 = 8;
const NOD: i64 = 1024;

/// Build the analytics program. `main` returns the query checksum.
pub fn build(p: TaxiParams) -> (Module, FuncId) {
    let n = p.trips;
    let mut m = Module::new("analytics");
    let mut b = FunctionBuilder::new("main", vec![], Type::I64);

    // --- columns (the "dataset") ---
    let pickup_hour = alloc_i64(&mut b, n);
    let dropoff_hour = alloc_i64(&mut b, n);
    let pickup_zone = alloc_i64(&mut b, n);
    let dropoff_zone = alloc_i64(&mut b, n);
    let distance = alloc_f64(&mut b, n);
    let fare = alloc_f64(&mut b, n);
    let tip = alloc_f64(&mut b, n);
    let passengers = alloc_i64(&mut b, n);

    // --- aggregates ---
    let hour_count = alloc_i64(&mut b, NHOURS);
    let hour_fare = alloc_f64(&mut b, NHOURS);
    let hour_avg = alloc_f64(&mut b, NHOURS);
    let zone_count = alloc_i64(&mut b, NZONES);
    let zone_revenue = alloc_f64(&mut b, NZONES);
    let dist_hist = alloc_i64(&mut b, NHIST);
    let pass_count = alloc_i64(&mut b, NPASS);
    let od_sketch = alloc_i64(&mut b, NOD);
    let long_idx = alloc_i64(&mut b, n);
    let long_fare = alloc_f64(&mut b, n);

    let (z, one) = (ic(0), ic(1));

    // zero aggregates
    for (arr, len) in [
        (hour_count, NHOURS),
        (zone_count, NZONES),
        (dist_hist, NHIST),
        (pass_count, NPASS),
        (od_sketch, NOD),
    ] {
        b.counted_loop(z, ic(len), one, |b, i| set_i64(b, arr, i, ic(0)));
    }
    for (arr, len) in [
        (hour_fare, NHOURS),
        (zone_revenue, NZONES),
        (hour_avg, NHOURS),
    ] {
        b.counted_loop(z, ic(len), one, |b, i| set_f64(b, arr, i, fc(0.0)));
    }

    // --- generation: fill columns from seeded hashes ---
    b.counted_loop(z, ic(n), one, |b, i| {
        let h0 = hash_salted(b, i, 1);
        let h1 = hash_salted(b, i, 2);
        let h2 = hash_salted(b, i, 3);
        let h3 = hash_salted(b, i, 4);
        let h4 = hash_salted(b, i, 5);
        let h5 = hash_salted(b, i, 6);
        let ph = urem_const(b, h0, NHOURS);
        set_i64(b, pickup_hour, i, ph);
        let dh = {
            let sh = b.bin(cards_ir::BinOp::LShr, h0, ic(8), Type::I64);
            urem_const(b, sh, NHOURS)
        };
        set_i64(b, dropoff_hour, i, dh);
        let pz = urem_const(b, h1, NZONES);
        set_i64(b, pickup_zone, i, pz);
        let dz = {
            let sh = b.bin(cards_ir::BinOp::LShr, h1, ic(8), Type::I64);
            urem_const(b, sh, NZONES)
        };
        set_i64(b, dropoff_zone, i, dz);
        // distance = (h2 % 3000) / 100.0   (0..30 miles)
        let dmi = urem_const(b, h2, 3000);
        let dmf = to_f64(b, dmi);
        let dist = b.bin(cards_ir::BinOp::FDiv, dmf, fc(100.0), Type::F64);
        set_f64(b, distance, i, dist);
        // fare = 2.5 + dist * 2.5 + (h3 % 500)/100
        let base = b.fmul(dist, fc(2.5));
        let s_i = urem_const(b, h3, 500);
        let s_f = to_f64(b, s_i);
        let surch = b.bin(cards_ir::BinOp::FDiv, s_f, fc(100.0), Type::F64);
        let f0 = b.fadd(fc(2.5), base);
        let f1 = b.fadd(f0, surch);
        set_f64(b, fare, i, f1);
        // tip = (h4 % 200)/100
        let t_i = urem_const(b, h4, 200);
        let t_f = to_f64(b, t_i);
        let tipv = b.bin(cards_ir::BinOp::FDiv, t_f, fc(100.0), Type::F64);
        set_f64(b, tip, i, tipv);
        // passengers = 1 + h5 % 6
        let p_i = urem_const(b, h5, 6);
        let pv = b.add(p_i, ic(1));
        set_i64(b, passengers, i, pv);
    });

    // --- Q1: fare by pickup hour ---
    b.counted_loop(z, ic(n), one, |b, i| {
        let ph = get_i64(b, pickup_hour, i);
        add_i64_at(b, hour_count, ph, ic(1));
        let f = get_f64(b, fare, i);
        add_f64_at(b, hour_fare, ph, f);
    });

    // --- Q2: revenue by pickup zone ---
    b.counted_loop(z, ic(n), one, |b, i| {
        let pz = get_i64(b, pickup_zone, i);
        add_i64_at(b, zone_count, pz, ic(1));
        let f = get_f64(b, fare, i);
        let t = get_f64(b, tip, i);
        let rev = b.fadd(f, t);
        add_f64_at(b, zone_revenue, pz, rev);
    });

    // --- Q3: filter long trips (dist > 10.0) into side arrays ---
    let long_cnt = AccI64::new(&mut b, 0);
    b.counted_loop(z, ic(n), one, |b, i| {
        let d = get_f64(b, distance, i);
        let isl = b.cmp(CmpOp::FGt, d, fc(10.0));
        if_then(b, isl, |b| {
            let c = long_cnt.get(b);
            set_i64(b, long_idx, c, i);
            let f = get_f64(b, fare, i);
            set_f64(b, long_fare, c, f);
            long_cnt.add(b, ic(1));
        });
    });

    // --- Q4: distance histogram + passenger counts ---
    b.counted_loop(z, ic(n), one, |b, i| {
        let d = get_f64(b, distance, i);
        let d2 = b.fmul(d, fc(2.0));
        let bin = b.cast(cards_ir::CastOp::FpToSi, d2, Type::I64);
        let bin = min_const(b, bin, NHIST - 1);
        add_i64_at(b, dist_hist, bin, ic(1));
        let p = get_i64(b, passengers, i);
        add_i64_at(b, pass_count, p, ic(1));
    });

    // --- Q5: origin/destination sketch ---
    b.counted_loop(z, ic(n), one, |b, i| {
        let pz = get_i64(b, pickup_zone, i);
        let dz = get_i64(b, dropoff_zone, i);
        let key = {
            let s = b.mul(pz, ic(NZONES));
            b.add(s, dz)
        };
        let h = b.intrin(cards_ir::Intrinsic::Hash64, vec![key]);
        let slot = urem_const(b, h, NOD);
        add_i64_at(b, od_sketch, slot, ic(1));
    });

    // --- Q6: hourly average fare ---
    b.counted_loop(z, ic(NHOURS), one, |b, h| {
        let cnt = get_i64(b, hour_count, h);
        let cnt1 = {
            let isz = b.cmp(CmpOp::Eq, cnt, ic(0));
            b.select(isz, ic(1), cnt, Type::I64)
        };
        let tot = get_f64(b, hour_fare, h);
        let cf = to_f64(b, cnt1);
        let avg = b.bin(cards_ir::BinOp::FDiv, tot, cf, Type::F64);
        set_f64(b, hour_avg, h, avg);
    });

    // --- Q7: long-trip revenue (second pass over the filtered arrays) ---
    let long_rev = AccI64::new(&mut b, 0);
    {
        let cnt = long_cnt.get(&mut b);
        b.counted_loop(z, cnt, one, |b, j| {
            let f = get_f64(b, long_fare, j);
            let scaled = b.fmul(f, fc(1000.0));
            let iv = b.cast(cards_ir::CastOp::FpToSi, scaled, Type::I64);
            long_rev.add(b, iv);
        });
    }

    // --- Q8: revenue per trip by zone (normalize in place) ---
    b.counted_loop(z, ic(NZONES), one, |b, zz| {
        let cnt = get_i64(b, zone_count, zz);
        let cnt1 = {
            let isz = b.cmp(CmpOp::Eq, cnt, ic(0));
            b.select(isz, ic(1), cnt, Type::I64)
        };
        let rev = get_f64(b, zone_revenue, zz);
        let cf = to_f64(b, cnt1);
        let per = b.bin(cards_ir::BinOp::FDiv, rev, cf, Type::F64);
        set_f64(b, zone_revenue, zz, per);
    });

    // --- Q9: cumulative distance histogram (in-place prefix sum) ---
    b.counted_loop(one, ic(NHIST), one, |b, h| {
        let hm1 = b.sub(h, ic(1));
        let prev = get_i64(b, dist_hist, hm1);
        add_i64_at(b, dist_hist, h, prev);
    });

    // --- Q10: busiest hour (argmax over counts, tracking its avg fare) ---
    let busiest = AccI64::new(&mut b, -1);
    let best_cnt = AccI64::new(&mut b, -1);
    b.counted_loop(z, ic(NHOURS), one, |b, h| {
        let cnt = get_i64(b, hour_count, h);
        let cur = best_cnt.get(b);
        let better = b.cmp(CmpOp::Sgt, cnt, cur);
        if_then(b, better, |b| {
            b.store(best_cnt.0, cnt, Type::I64);
            b.store(busiest.0, h, Type::I64);
            let _touch = get_f64(b, hour_avg, h);
            let f = get_f64(b, hour_fare, h);
            let scaled = b.fmul(f, fc(1.0));
            let hslot = h; // keep the read live
            set_f64(b, hour_fare, hslot, scaled);
        });
    });

    // --- Q11: OD heavy hitters: max, then count slots above half-max ---
    let od_max = AccI64::new(&mut b, 0);
    b.counted_loop(z, ic(NOD), one, |b, s| {
        let v = get_i64(b, od_sketch, s);
        let cur = od_max.get(b);
        let mx = b.intrin(cards_ir::Intrinsic::MaxI64, vec![v, cur]);
        b.store(od_max.0, mx, Type::I64);
    });
    let od_heavy = AccI64::new(&mut b, 0);
    b.counted_loop(z, ic(NOD), one, |b, s| {
        let v = get_i64(b, od_sketch, s);
        let half = {
            let mx = od_max.get(b);
            b.bin(cards_ir::BinOp::AShr, mx, ic(1), Type::I64)
        };
        let hot = b.cmp(CmpOp::Sgt, v, half);
        if_then(b, hot, |b| od_heavy.add(b, ic(1)));
    });

    // --- Q12: average passengers (weighted read of pass_count) ---
    let pass_tot = AccI64::new(&mut b, 0);
    b.counted_loop(z, ic(NPASS), one, |b, s| {
        let v = get_i64(b, pass_count, s);
        let w = b.mul(v, s);
        pass_tot.add(b, w);
    });

    // --- checksum ---
    let acc = AccI64::new(&mut b, 0);
    checksum_i64(&mut b, &acc, hour_count, NHOURS);
    checksum_f64(&mut b, &acc, hour_avg, NHOURS);
    checksum_i64(&mut b, &acc, zone_count, NZONES);
    checksum_f64(&mut b, &acc, zone_revenue, NZONES);
    checksum_i64(&mut b, &acc, dist_hist, NHIST);
    checksum_i64(&mut b, &acc, pass_count, NPASS);
    checksum_i64(&mut b, &acc, od_sketch, NOD);
    {
        let c = long_cnt.get(&mut b);
        acc.add(&mut b, c);
        let r = long_rev.get(&mut b);
        acc.add(&mut b, r);
        let bh = busiest.get(&mut b);
        acc.add(&mut b, bh);
        let oh = od_heavy.get(&mut b);
        acc.add(&mut b, oh);
        let pt = pass_tot.get(&mut b);
        acc.add(&mut b, pt);
    }
    let out = acc.get(&mut b);
    b.ret(out);
    let main_f = m.add_function(b.finish());
    (m, main_f)
}

/// Native Rust reference computing the identical checksum.
pub fn reference(p: TaxiParams) -> i64 {
    let n = p.trips as u64;
    let mut hour_count = [0i64; NHOURS as usize];
    let mut hour_fare = [0f64; NHOURS as usize];
    let mut zone_count = [0i64; NZONES as usize];
    let mut zone_revenue = [0f64; NZONES as usize];
    let mut dist_hist = [0i64; NHIST as usize];
    let mut pass_count = [0i64; NPASS as usize];
    let mut od = [0i64; NOD as usize];
    let mut long_fares: Vec<f64> = Vec::new();

    let col = |i: u64, salt: u64| splitmix64(i ^ salt);
    for i in 0..n {
        let h0 = col(i, 1);
        let h1 = col(i, 2);
        let h2 = col(i, 3);
        let h3 = col(i, 4);
        let h4 = col(i, 5);
        let _h4 = h4;
        let ph = (h0 % NHOURS as u64) as usize;
        let pz = (h1 % NZONES as u64) as usize;
        let dz = ((h1 >> 8) % NZONES as u64) as usize;
        let dist = (h2 % 3000) as f64 / 100.0;
        let fare = 2.5 + dist * 2.5 + (h3 % 500) as f64 / 100.0;
        let tip = (h4 % 200) as f64 / 100.0;
        let pass = 1 + (col(i, 6) % 6) as usize;
        hour_count[ph] += 1;
        hour_fare[ph] += fare;
        zone_count[pz] += 1;
        zone_revenue[pz] += fare + tip;
        if dist > 10.0 {
            long_fares.push(fare);
        }
        let bin = ((dist * 2.0) as i64).min(NHIST - 1) as usize;
        dist_hist[bin] += 1;
        pass_count[pass] += 1;
        let key = (pz * NZONES as usize + dz) as u64;
        od[(splitmix64(key) % NOD as u64) as usize] += 1;
    }
    let mut hour_avg = [0f64; NHOURS as usize];
    for h in 0..NHOURS as usize {
        let c = if hour_count[h] == 0 { 1 } else { hour_count[h] };
        hour_avg[h] = hour_fare[h] / c as f64;
    }
    let long_rev: i64 = long_fares.iter().map(|f| (f * 1000.0) as i64).sum();
    // Q8: normalize zone revenue
    for zz in 0..NZONES as usize {
        let c = if zone_count[zz] == 0 {
            1
        } else {
            zone_count[zz]
        };
        zone_revenue[zz] /= c as f64;
    }
    // Q9: cumulative histogram
    for h in 1..NHIST as usize {
        dist_hist[h] += dist_hist[h - 1];
    }
    // Q10: busiest hour
    let mut busiest = -1i64;
    let mut best_cnt = -1i64;
    for (h, &cnt) in hour_count.iter().enumerate() {
        if cnt > best_cnt {
            best_cnt = cnt;
            busiest = h as i64;
        }
    }
    // Q11: OD heavy hitters
    let od_max = od.iter().copied().max().unwrap_or(0);
    let od_heavy = od.iter().filter(|&&v| v > od_max >> 1).count() as i64;
    // Q12: weighted passenger total
    let pass_tot: i64 = pass_count
        .iter()
        .enumerate()
        .map(|(s, &v)| v * s as i64)
        .sum();

    let mut acc: i64 = 0;
    acc += hour_count.iter().sum::<i64>();
    acc += hour_avg.iter().map(|v| (v * 1000.0) as i64).sum::<i64>();
    acc += zone_count.iter().sum::<i64>();
    acc += zone_revenue
        .iter()
        .map(|v| (v * 1000.0) as i64)
        .sum::<i64>();
    acc += dist_hist.iter().sum::<i64>();
    acc += pass_count.iter().sum::<i64>();
    acc += od.iter().sum::<i64>();
    acc += long_fares.len() as i64;
    acc += long_rev;
    acc += busiest;
    acc += od_heavy;
    acc += pass_tot;
    acc
}
