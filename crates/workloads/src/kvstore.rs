//! Extension workload: a key-value store in the AIFM/Memcached mold —
//! the application class the paper's introduction motivates.
//!
//! Three structurally different data structures interact per operation:
//! - a **hash index** (open addressing, probed — irregular),
//! - a **value log** (append-only bump region — streaming),
//! - a **per-slot access-count array** standing in for LRU metadata
//!   (small and scorching hot — the pinning policies' best customer).
//!
//! Workload: a seeded GET/PUT mix with a Zipf-ish skew (80% of operations
//! target 20% of the keyspace via hash folding), checksummed exactly
//! against the native reference.

use cards_ir::{CmpOp, FuncId, FunctionBuilder, Module, Type};

use crate::util::*;

/// KV-store parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KvParams {
    /// Distinct keys (table capacity is the next power of two above 2×).
    pub keys: i64,
    /// Operations in the mixed phase.
    pub ops: i64,
}

impl Default for KvParams {
    fn default() -> Self {
        KvParams {
            keys: 8_192,
            ops: 40_000,
        }
    }
}

impl KvParams {
    /// Tiny configuration for unit tests.
    pub fn test() -> Self {
        KvParams {
            keys: 256,
            ops: 1_500,
        }
    }

    fn cap(&self) -> i64 {
        (2 * self.keys.max(1) as u64).next_power_of_two() as i64
    }

    /// Approximate working-set bytes (index + counts + value log).
    pub fn working_set_bytes(&self) -> u64 {
        (2 * self.cap() as u64 + 2 * self.keys as u64 + self.ops as u64) * 8
    }
}

/// Skewed key for operation `i`: 80% of ops hit the bottom 20% of keys.
fn skewed_key(h: u64, keys: u64) -> u64 {
    let hot = keys / 5;
    if h % 10 < 8 {
        (h >> 8) % hot.max(1)
    } else {
        (h >> 8) % keys
    }
}

/// Build the KV-store program; `main` returns the GET checksum.
pub fn build(p: KvParams) -> (Module, FuncId) {
    let keys = p.keys;
    let cap = p.cap();
    let mask = cap - 1;
    let mut m = Module::new("kvstore");
    let mut b = FunctionBuilder::new("main", vec![], Type::I64);

    let index_keys = alloc_i64(&mut b, cap); // slot -> key (or -1)
    let index_vptr = alloc_i64(&mut b, cap); // slot -> value-log offset
    let counts = alloc_i64(&mut b, keys); // key -> access count (hot!)
    let vlog = alloc_i64(&mut b, keys + p.ops); // append-only values
    let vlog_len = AccI64::new(&mut b, 0);

    let (z, one) = (ic(0), ic(1));
    b.counted_loop(z, ic(cap), one, |b, s| set_i64(b, index_keys, s, ic(-1)));
    b.counted_loop(z, ic(keys), one, |b, k| set_i64(b, counts, k, ic(0)));

    // --- load phase: PUT every key once ---
    b.counted_loop(z, ic(keys), one, |b, k| {
        // find slot by linear probing
        let hh = b.intrin(cards_ir::Intrinsic::Hash64, vec![k]);
        let start = b.bin(cards_ir::BinOp::And, hh, ic(mask), Type::I64);
        let slot = b.alloca(Type::I64);
        b.store(slot, start, Type::I64);
        while_loop(
            b,
            |b| {
                let s = b.load(slot, Type::I64);
                let cur = get_i64(b, index_keys, s);
                let empty = b.cmp(CmpOp::Eq, cur, ic(-1));
                let mine = b.cmp(CmpOp::Eq, cur, k);
                let done = b.bin(cards_ir::BinOp::Or, empty, mine, Type::I64);
                b.cmp(CmpOp::Eq, done, ic(0))
            },
            |b| {
                let s = b.load(slot, Type::I64);
                let s1 = b.add(s, one);
                let s2 = b.bin(cards_ir::BinOp::And, s1, ic(mask), Type::I64);
                b.store(slot, s2, Type::I64);
            },
        );
        let s = b.load(slot, Type::I64);
        set_i64(b, index_keys, s, k);
        // append value to the log
        let off = vlog_len.get(b);
        let v = hash_salted(b, k, 0x71);
        let v = urem_const(b, v, 1_000_000);
        set_i64(b, vlog, off, v);
        set_i64(b, index_vptr, s, off);
        vlog_len.add(b, one);
    });

    // --- mixed phase: skewed GET/PUT (7:1) ---
    let acc = AccI64::new(&mut b, 0);
    b.counted_loop(z, ic(p.ops), one, |b, i| {
        let h = hash_salted(b, i, 0x60D);
        // key = skewed_key(h, keys)
        let hot = ic((keys / 5).max(1));
        let hsel = urem_const(b, h, 10);
        let hshift = b.bin(cards_ir::BinOp::LShr, h, ic(8), Type::I64);
        let khot = b.bin(cards_ir::BinOp::URem, hshift, hot, Type::I64);
        let kall = urem_const(b, hshift, keys);
        let is_hot = b.cmp(CmpOp::Ult, hsel, ic(8));
        let k = b.select(is_hot, khot, kall, Type::I64);
        // probe
        let hh = b.intrin(cards_ir::Intrinsic::Hash64, vec![k]);
        let start = b.bin(cards_ir::BinOp::And, hh, ic(mask), Type::I64);
        let slot = b.alloca(Type::I64);
        b.store(slot, start, Type::I64);
        while_loop(
            b,
            |b| {
                let s = b.load(slot, Type::I64);
                let cur = get_i64(b, index_keys, s);
                b.cmp(CmpOp::Ne, cur, k)
            },
            |b| {
                let s = b.load(slot, Type::I64);
                let s1 = b.add(s, one);
                let s2 = b.bin(cards_ir::BinOp::And, s1, ic(mask), Type::I64);
                b.store(slot, s2, Type::I64);
            },
        );
        let s = b.load(slot, Type::I64);
        add_i64_at(b, counts, k, one); // LRU-ish metadata bump
        let is_put = {
            let r = urem_const(b, h, 8);
            b.cmp(CmpOp::Eq, r, ic(0))
        };
        if_then(b, is_put, |b| {
            // PUT: append new value, repoint the slot
            let off = vlog_len.get(b);
            let v = hash_salted(b, i, 0x90);
            let v = urem_const(b, v, 1_000_000);
            set_i64(b, vlog, off, v);
            set_i64(b, index_vptr, s, off);
            vlog_len.add(b, one);
        });
        // GET (always reads back, PUT or not)
        let off = get_i64(b, index_vptr, s);
        let v = get_i64(b, vlog, off);
        acc.add(b, v);
    });

    // fold hot-metadata counts into the checksum
    checksum_i64(&mut b, &acc, counts, keys);
    let out = acc.get(&mut b);
    b.ret(out);
    let f = m.add_function(b.finish());
    (m, f)
}

/// Native reference with identical probing and skew.
pub fn reference(p: KvParams) -> i64 {
    let keys = p.keys as u64;
    let cap = p.cap() as usize;
    let mask = cap - 1;
    let mut index_keys = vec![-1i64; cap];
    let mut index_vptr = vec![0i64; cap];
    let mut counts = vec![0i64; p.keys as usize];
    let mut vlog: Vec<i64> = Vec::new();

    let probe = |index_keys: &[i64], k: i64, start: usize| -> usize {
        let mut s = start;
        while index_keys[s] != -1 && index_keys[s] != k {
            s = (s + 1) & mask;
        }
        s
    };
    for k in 0..p.keys {
        let start = (splitmix64(k as u64) as usize) & mask;
        let s = probe(&index_keys, k, start);
        index_keys[s] = k;
        let v = (splitmix64(k as u64 ^ 0x71) % 1_000_000) as i64;
        index_vptr[s] = vlog.len() as i64;
        vlog.push(v);
    }
    let mut acc = 0i64;
    for i in 0..p.ops as u64 {
        let h = splitmix64(i ^ 0x60D);
        let k = skewed_key(h, keys) as i64;
        let start = (splitmix64(k as u64) as usize) & mask;
        let mut s = start;
        while index_keys[s] != k {
            s = (s + 1) & mask;
        }
        counts[k as usize] += 1;
        if h.is_multiple_of(8) {
            let v = (splitmix64(i ^ 0x90) % 1_000_000) as i64;
            index_vptr[s] = vlog.len() as i64;
            vlog.push(v);
        }
        acc = acc.wrapping_add(vlog[index_vptr[s] as usize]);
    }
    acc.wrapping_add(counts.iter().sum::<i64>())
}
