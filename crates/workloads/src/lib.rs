//! # cards-workloads
//!
//! The benchmark programs of the CaRDS paper, expressed as `cards-ir`
//! modules built programmatically, with native Rust reference
//! implementations that reproduce the same (seeded, synthetic) data and
//! therefore the same checksums:
//!
//! - [`taxi`] — the NYC-taxi-style `analytics` workload (Figures 6, 8);
//! - [`bfs`] — GAP-style BFS (Figure 5);
//! - [`fdtd`] — PolyBench-style `fdtd-apml` (Figure 7);
//! - [`micro`] — the Figure-9 `c[i]=a[i]+b[i]` microbenchmarks over
//!   array / vector / list / map shapes;
//! - [`listing1`] — the paper's running example (Figure 4);
//! - [`pagerank`] — an extension workload (not in the paper) stressing
//!   rank-vector ping-pong plus irregular scatter;
//! - [`kvstore`] — an extension workload in the Memcached mold (hash index
//!   + value log + hot metadata) with a skewed GET/PUT mix.
//!
//! Every module provides `build(params) -> (Module, FuncId)` whose `main`
//! returns a checksum, plus `reference(params) -> i64` computing the same
//! value natively. Integration tests assert the VM (both untransformed and
//! CaRDS-compiled) matches the reference.

pub mod bfs;
pub mod fdtd;
pub mod kvstore;
pub mod listing1;
pub mod micro;
pub mod pagerank;
pub mod serving;
pub mod taxi;
pub mod util;

#[cfg(test)]
mod tests {
    use cards_net::SimTransport;
    use cards_passes::{compile, CompileOptions};
    use cards_runtime::{RemotingPolicy, RuntimeConfig};
    use cards_vm::Vm;

    /// Run a module natively (untransformed) and return main's result.
    fn run_native(m: cards_ir::Module) -> i64 {
        assert!(cards_ir::verify_module(&m).is_empty());
        let mut vm = Vm::new(
            m,
            RuntimeConfig::new(1 << 30, 1 << 30),
            SimTransport::default(),
            RemotingPolicy::Linear,
            100,
        );
        vm.run("main", &[]).unwrap().unwrap() as i64
    }

    /// Run a module through the CaRDS pipeline with a small cache.
    fn run_cards(m: cards_ir::Module, ws: u64) -> i64 {
        let c = compile(m, CompileOptions::cards()).unwrap();
        let mut vm = Vm::new(
            c.module,
            RuntimeConfig::new(ws / 4, ws / 4),
            SimTransport::default(),
            RemotingPolicy::MaxUse,
            50,
        );
        vm.run("main", &[]).unwrap().unwrap() as i64
    }

    #[test]
    fn taxi_native_matches_reference() {
        let p = crate::taxi::TaxiParams::test();
        let (m, _) = crate::taxi::build(p);
        assert_eq!(run_native(m), crate::taxi::reference(p));
    }

    #[test]
    fn taxi_cards_matches_reference() {
        let p = crate::taxi::TaxiParams::test();
        let (m, _) = crate::taxi::build(p);
        assert_eq!(
            run_cards(m, p.working_set_bytes()),
            crate::taxi::reference(p)
        );
    }

    #[test]
    fn taxi_has_many_disjoint_structures() {
        let (m, _) = crate::taxi::build(crate::taxi::TaxiParams::test());
        let c = compile(m, CompileOptions::cards()).unwrap();
        // paper: 22 structures for the full app; our kernel carries 18
        assert!(
            c.ds_count() >= 15,
            "analytics should expose many DSes, got {}",
            c.ds_count()
        );
    }

    #[test]
    fn bfs_native_matches_reference() {
        let p = crate::bfs::BfsParams::test();
        let (m, _) = crate::bfs::build(p);
        assert_eq!(run_native(m), crate::bfs::reference(p));
    }

    #[test]
    fn bfs_cards_matches_reference() {
        let p = crate::bfs::BfsParams::test();
        let (m, _) = crate::bfs::build(p);
        assert_eq!(
            run_cards(m, p.working_set_bytes()),
            crate::bfs::reference(p)
        );
    }

    #[test]
    fn fdtd_native_matches_reference() {
        let p = crate::fdtd::FdtdParams::test();
        let (m, _) = crate::fdtd::build(p);
        assert_eq!(run_native(m), crate::fdtd::reference(p));
    }

    #[test]
    fn fdtd_cards_matches_reference() {
        let p = crate::fdtd::FdtdParams::test();
        let (m, _) = crate::fdtd::build(p);
        assert_eq!(
            run_cards(m, p.working_set_bytes()),
            crate::fdtd::reference(p)
        );
    }

    #[test]
    fn fdtd_identifies_fifteen_grids() {
        let (m, _) = crate::fdtd::build(crate::fdtd::FdtdParams::test());
        let c = compile(m, CompileOptions::cards()).unwrap();
        assert_eq!(c.ds_count(), 15);
    }

    #[test]
    fn micro_all_kinds_native_match_reference() {
        let p = crate::micro::MicroParams::test();
        for kind in crate::micro::MicroKind::all() {
            let (m, _) = crate::micro::build(kind, p);
            assert_eq!(
                run_native(m),
                crate::micro::reference(kind, p),
                "kind {kind:?}"
            );
        }
    }

    #[test]
    fn micro_all_kinds_cards_match_reference() {
        let p = crate::micro::MicroParams::test();
        for kind in crate::micro::MicroKind::all() {
            let (m, _) = crate::micro::build(kind, p);
            assert_eq!(
                run_cards(m, p.working_set_bytes()),
                crate::micro::reference(kind, p),
                "kind {kind:?}"
            );
        }
    }

    #[test]
    fn micro_list_is_recursive_ds() {
        let (m, _) = crate::micro::build(
            crate::micro::MicroKind::List,
            crate::micro::MicroParams::test(),
        );
        let c = compile(m, CompileOptions::cards()).unwrap();
        assert!(
            c.dsa.instances.iter().any(|i| i.recursive),
            "list nodes must form a recursive DS"
        );
    }

    #[test]
    fn kvstore_native_matches_reference() {
        let p = crate::kvstore::KvParams::test();
        let (m, _) = crate::kvstore::build(p);
        assert_eq!(run_native(m), crate::kvstore::reference(p));
    }

    #[test]
    fn kvstore_cards_matches_reference() {
        let p = crate::kvstore::KvParams::test();
        let (m, _) = crate::kvstore::build(p);
        assert_eq!(
            run_cards(m, p.working_set_bytes()),
            crate::kvstore::reference(p)
        );
    }

    #[test]
    fn serving_native_matches_reference() {
        let p = crate::serving::ServingParams::test();
        let (m, _) = crate::serving::build(p);
        assert_eq!(run_native(m), crate::serving::reference(p));
    }

    #[test]
    fn serving_cards_matches_reference() {
        let p = crate::serving::ServingParams::test();
        let (m, _) = crate::serving::build(p);
        assert_eq!(
            run_cards(m, p.working_set_bytes()),
            crate::serving::reference(p)
        );
    }

    #[test]
    fn serving_tenant_references_sum_to_main() {
        let p = crate::serving::ServingParams::test();
        let total: i64 = (0..p.tenants as u64)
            .map(|t| crate::serving::reference_tenant(p, t))
            .fold(0i64, |a, v| a.wrapping_add(v));
        assert_eq!(total, crate::serving::reference(p));
    }

    #[test]
    fn serving_request_entry_matches_reference_per_tenant() {
        // The split entry points must agree with the serial main: run
        // setup once, then one tenant's session through `request`.
        let p = crate::serving::ServingParams::test();
        let (m, _) = crate::serving::build(p);
        assert!(cards_ir::verify_module(&m).is_empty());
        let mut vm = Vm::new(
            m,
            RuntimeConfig::new(1 << 30, 1 << 30),
            SimTransport::default(),
            RemotingPolicy::Linear,
            100,
        );
        vm.run("setup", &[]).unwrap();
        for tenant in [0u64, 3, 7] {
            let mut acc = 0i64;
            for i in 0..p.ops_per_tenant as u64 {
                let v = vm.run("request", &[tenant, i]).unwrap().unwrap() as i64;
                acc = acc.wrapping_add(v);
            }
            assert_eq!(acc, crate::serving::reference_tenant(p, tenant));
        }
    }

    #[test]
    fn serving_split_compiles_and_serves_from_host() {
        // The split build (no `main`) leaves `setup`/`request` as DSA
        // entries, so the CaRDS-compiled module can be driven request by
        // request from the host — the concurrent harness contract.
        let p = crate::serving::ServingParams::test();
        let m = crate::serving::build_split(p);
        assert!(cards_ir::verify_module(&m).is_empty());
        let c = compile(m, CompileOptions::cards()).unwrap();
        let mut vm = Vm::new(
            c.module,
            RuntimeConfig::new(p.working_set_bytes() / 4, p.working_set_bytes() / 4),
            SimTransport::default(),
            RemotingPolicy::MaxUse,
            50,
        );
        vm.run("setup", &[]).unwrap();
        let mut total = 0i64;
        for t in 0..p.tenants as u64 {
            for i in 0..p.ops_per_tenant as u64 {
                let v = vm.run("request", &[t, i]).unwrap().unwrap() as i64;
                total = total.wrapping_add(v);
            }
        }
        assert_eq!(total, crate::serving::reference(p));
        assert!(vm.metrics().guards > 0, "split build must stay guarded");
    }

    #[test]
    fn pagerank_native_matches_reference() {
        let p = crate::pagerank::PagerankParams::test();
        let (m, _) = crate::pagerank::build(p);
        assert_eq!(run_native(m), crate::pagerank::reference(p));
    }

    #[test]
    fn pagerank_cards_matches_reference() {
        let p = crate::pagerank::PagerankParams::test();
        let (m, _) = crate::pagerank::build(p);
        assert_eq!(
            run_cards(m, p.working_set_bytes()),
            crate::pagerank::reference(p)
        );
    }

    #[test]
    fn listing1_native_matches_reference() {
        let p = crate::listing1::Listing1Params::test();
        let (m, _) = crate::listing1::build(p);
        assert_eq!(run_native(m), crate::listing1::reference(p));
    }

    #[test]
    fn listing1_cards_matches_reference() {
        let p = crate::listing1::Listing1Params::test();
        let (m, _) = crate::listing1::build(p);
        assert_eq!(
            run_cards(m, p.working_set_bytes()),
            crate::listing1::reference(p)
        );
    }
}
