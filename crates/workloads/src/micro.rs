//! Microbenchmarks for Figure 9: the `c[i] = a[i] + b[i]` sum expressed
//! over four data-structure shapes.
//!
//! - **array**: plain arrays with induction-variable indexing — TrackFM's
//!   best case; CaRDS should match (speedup ≈ 1×).
//! - **vector**: C++-`vector`-like headers whose data pointer is loaded on
//!   every access — defeats TrackFM's induction-variable-only analysis but
//!   not CaRDS's per-DS runtime prefetchers.
//! - **list**: a linked list in shuffled memory order — pure pointer
//!   chasing; CaRDS uses the greedy-recursive prefetcher.
//! - **map**: an open-addressing hash map probed by key — irregular; CaRDS
//!   uses the jump-pointer prefetcher, which learns the repeat traversal.
//!
//! Every kernel runs `reps` passes so history-based prefetchers can train.

use cards_ir::{CmpOp, FuncId, FunctionBuilder, Module, Type, Value};

use crate::util::*;

/// Microbenchmark parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MicroParams {
    /// Element count (forced to a power of two).
    pub elems: i64,
    /// Number of passes over the structure.
    pub reps: i64,
}

impl Default for MicroParams {
    fn default() -> Self {
        MicroParams {
            elems: 1 << 14,
            reps: 3,
        }
    }
}

impl MicroParams {
    /// Tiny configuration for unit tests.
    pub fn test() -> Self {
        MicroParams {
            elems: 256,
            reps: 2,
        }
    }

    fn n(&self) -> i64 {
        (self.elems.max(1) as u64).next_power_of_two() as i64
    }

    /// Approximate working-set bytes of the heaviest variant (map: 4 arrays
    /// of 2n).
    pub fn working_set_bytes(&self) -> u64 {
        8 * (self.n() as u64) * 8
    }
}

/// The four Figure-9 data-structure shapes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MicroKind {
    /// Plain arrays.
    Array,
    /// Vector-like header + data indirection.
    Vector,
    /// Shuffled linked list.
    List,
    /// Open-addressing hash map.
    Map,
}

impl MicroKind {
    /// All variants in figure order.
    pub fn all() -> [MicroKind; 4] {
        [
            MicroKind::Array,
            MicroKind::Vector,
            MicroKind::List,
            MicroKind::Map,
        ]
    }

    /// Display label.
    pub fn name(&self) -> &'static str {
        match self {
            MicroKind::Array => "array",
            MicroKind::Vector => "vector",
            MicroKind::List => "list",
            MicroKind::Map => "map",
        }
    }
}

/// Build the chosen microbenchmark; `main` returns the checksum.
pub fn build(kind: MicroKind, p: MicroParams) -> (Module, FuncId) {
    match kind {
        MicroKind::Array => build_array(p),
        MicroKind::Vector => build_vector(p),
        MicroKind::List => build_list(p),
        MicroKind::Map => build_map(p),
    }
}

/// Native reference for the chosen microbenchmark.
pub fn reference(kind: MicroKind, p: MicroParams) -> i64 {
    match kind {
        MicroKind::Array | MicroKind::Vector => reference_sum(p),
        MicroKind::List => reference_sum(p), // same values, different layout
        MicroKind::Map => reference_sum(p),
    }
}

fn a_val(i: u64) -> u64 {
    splitmix64(i ^ 0xA) % 1_000_000
}

fn b_val(i: u64) -> u64 {
    splitmix64(i ^ 0xB) % 1_000_000
}

fn reference_sum(p: MicroParams) -> i64 {
    let n = p.n() as u64;
    let mut acc = 0i64;
    for _ in 0..p.reps {
        for i in 0..n {
            acc = acc.wrapping_add((a_val(i) + b_val(i)) as i64);
        }
    }
    acc
}

fn emit_a(b: &mut FunctionBuilder, i: Value) -> Value {
    let h = hash_salted(b, i, 0xA);
    urem_const(b, h, 1_000_000)
}

fn emit_b(b: &mut FunctionBuilder, i: Value) -> Value {
    let h = hash_salted(b, i, 0xB);
    urem_const(b, h, 1_000_000)
}

fn build_array(p: MicroParams) -> (Module, FuncId) {
    let n = p.n();
    let mut m = Module::new("micro_array");
    let mut b = FunctionBuilder::new("main", vec![], Type::I64);
    let a = alloc_i64(&mut b, n);
    let bb = alloc_i64(&mut b, n);
    let c = alloc_i64(&mut b, n);
    let (z, one) = (ic(0), ic(1));
    b.counted_loop(z, ic(n), one, |b, i| {
        let va = emit_a(b, i);
        set_i64(b, a, i, va);
        let vb = emit_b(b, i);
        set_i64(b, bb, i, vb);
    });
    let acc = AccI64::new(&mut b, 0);
    b.counted_loop(z, ic(p.reps), one, |b, _r| {
        b.counted_loop(z, ic(n), one, |b, i| {
            let va = get_i64(b, a, i);
            let vb = get_i64(b, bb, i);
            let s = b.add(va, vb);
            set_i64(b, c, i, s);
            acc.add(b, s);
        });
    });
    let out = acc.get(&mut b);
    b.ret(out);
    let f = m.add_function(b.finish());
    (m, f)
}

fn build_vector(p: MicroParams) -> (Module, FuncId) {
    let n = p.n();
    let mut m = Module::new("micro_vector");
    let vh = m.types.add_struct("VecHdr", vec![Type::I64, Type::Ptr]);
    let mut b = FunctionBuilder::new("main", vec![], Type::I64);
    // three vector headers + three data arrays
    let mk = |b: &mut FunctionBuilder| -> Value {
        let hdr = b.alloc(ic(16), Type::Struct(vh));
        let data = b.alloc(ic(n * 8), Type::I64);
        let lp = b.gep_field(hdr, Type::Struct(vh), 0);
        b.store(lp, ic(n), Type::I64);
        let dp = b.gep_field(hdr, Type::Struct(vh), 1);
        b.store(dp, data, Type::Ptr);
        hdr
    };
    let ha = mk(&mut b);
    let hb = mk(&mut b);
    let hc = mk(&mut b);
    let (z, one) = (ic(0), ic(1));
    // init through the headers
    b.counted_loop(z, ic(n), one, |b, i| {
        let dp = b.gep_field(ha, Type::Struct(vh), 1);
        let da = b.load(dp, Type::Ptr);
        let va = emit_a(b, i);
        set_i64(b, da, i, va);
        let dpb = b.gep_field(hb, Type::Struct(vh), 1);
        let db = b.load(dpb, Type::Ptr);
        let vb = emit_b(b, i);
        set_i64(b, db, i, vb);
    });
    let acc = AccI64::new(&mut b, 0);
    b.counted_loop(z, ic(p.reps), one, |b, _r| {
        b.counted_loop(z, ic(n), one, |b, i| {
            // the data pointer is re-loaded per element (vector::operator[])
            let dpa = b.gep_field(ha, Type::Struct(vh), 1);
            let da = b.load(dpa, Type::Ptr);
            let va = get_i64(b, da, i);
            let dpb = b.gep_field(hb, Type::Struct(vh), 1);
            let db = b.load(dpb, Type::Ptr);
            let vb = get_i64(b, db, i);
            let s = b.add(va, vb);
            let dpc = b.gep_field(hc, Type::Struct(vh), 1);
            let dc = b.load(dpc, Type::Ptr);
            set_i64(b, dc, i, s);
            acc.add(b, s);
        });
    });
    let out = acc.get(&mut b);
    b.ret(out);
    let f = m.add_function(b.finish());
    (m, f)
}

fn build_list(p: MicroParams) -> (Module, FuncId) {
    let n = p.n();
    let mask = n - 1;
    let mut m = Module::new("micro_list");
    // Node { a, b, sum, next }
    let node = m
        .types
        .add_struct("Node", vec![Type::I64, Type::I64, Type::I64, Type::Ptr]);
    let nt = Type::Struct(node);
    let mut b = FunctionBuilder::new("main", vec![], Type::I64);
    let (z, one) = (ic(0), ic(1));
    // allocate nodes, keeping their pointers in a side table
    let ptrs = b.alloc(ic(n * 8), Type::Ptr);
    b.counted_loop(z, ic(n), one, |b, j| {
        let nd = b.alloc(ic(32), nt);
        set_ptr(b, ptrs, j, nd);
    });
    // link in shuffled order: logical element k lives at slot perm(k) =
    // (k * 0x9E37 + 7) & mask; fill values by logical index.
    b.counted_loop(z, ic(n), one, |b, k| {
        let slot = perm(b, k, mask);
        let nd = get_ptr(b, ptrs, slot);
        let va = emit_a(b, k);
        let pa = b.gep_field(nd, nt, 0);
        b.store(pa, va, Type::I64);
        let vb = emit_b(b, k);
        let pb = b.gep_field(nd, nt, 1);
        b.store(pb, vb, Type::I64);
        // next = node at perm(k+1), or null at the end
        let k1 = b.add(k, ic(1));
        let is_last = b.cmp(CmpOp::Eq, k1, ic(n));
        let slot1 = perm(b, k1, mask);
        let nxt = get_ptr(b, ptrs, slot1);
        let nxt = b.select(is_last, Value::Null, nxt, Type::Ptr);
        let pn = b.gep_field(nd, nt, 3);
        b.store(pn, nxt, Type::Ptr);
    });
    // head = node at perm(0)
    let head = {
        let s0 = perm(&mut b, z, mask);
        get_ptr(&mut b, ptrs, s0)
    };
    let acc = AccI64::new(&mut b, 0);
    let cur = b.alloca(Type::Ptr);
    b.counted_loop(z, ic(p.reps), one, |b, _r| {
        b.store(cur, head, Type::Ptr);
        while_loop(
            b,
            |b| {
                let c = b.load(cur, Type::Ptr);
                b.cmp(CmpOp::Ne, c, Value::Null)
            },
            |b| {
                let c = b.load(cur, Type::Ptr);
                let pa = b.gep_field(c, nt, 0);
                let va = b.load(pa, Type::I64);
                let pb = b.gep_field(c, nt, 1);
                let vb = b.load(pb, Type::I64);
                let s = b.add(va, vb);
                let ps = b.gep_field(c, nt, 2);
                b.store(ps, s, Type::I64);
                acc.add(b, s);
                let pn = b.gep_field(c, nt, 3);
                let nxt = b.load(pn, Type::Ptr);
                b.store(cur, nxt, Type::Ptr);
            },
        );
    });
    let out = acc.get(&mut b);
    b.ret(out);
    let f = m.add_function(b.finish());
    (m, f)
}

fn build_map(p: MicroParams) -> (Module, FuncId) {
    let n = p.n();
    let cap = 2 * n;
    let mask = cap - 1;
    let mut m = Module::new("micro_map");
    let mut b = FunctionBuilder::new("main", vec![], Type::I64);
    let keys = alloc_i64(&mut b, cap);
    let va = alloc_i64(&mut b, cap);
    let vb = alloc_i64(&mut b, cap);
    let vc = alloc_i64(&mut b, cap);
    let (z, one) = (ic(0), ic(1));
    b.counted_loop(z, ic(cap), one, |b, s| set_i64(b, keys, s, ic(-1)));
    // insert keys 0..n by linear probing
    b.counted_loop(z, ic(n), one, |b, i| {
        let h = b.intrin(cards_ir::Intrinsic::Hash64, vec![i]);
        let start = b.bin(cards_ir::BinOp::And, h, ic(mask), Type::I64);
        let slot = b.alloca(Type::I64);
        b.store(slot, start, Type::I64);
        while_loop(
            b,
            |b| {
                let s = b.load(slot, Type::I64);
                let k = get_i64(b, keys, s);
                b.cmp(CmpOp::Ne, k, ic(-1))
            },
            |b| {
                let s = b.load(slot, Type::I64);
                let s1 = b.add(s, ic(1));
                let s2 = b.bin(cards_ir::BinOp::And, s1, ic(mask), Type::I64);
                b.store(slot, s2, Type::I64);
            },
        );
        let s = b.load(slot, Type::I64);
        set_i64(b, keys, s, i);
        let a = emit_a(b, i);
        set_i64(b, va, s, a);
        let bv = emit_b(b, i);
        set_i64(b, vb, s, bv);
    });
    // reps lookup passes: c[find(i)] = a + b
    let acc = AccI64::new(&mut b, 0);
    b.counted_loop(z, ic(p.reps), one, |b, _r| {
        b.counted_loop(z, ic(n), one, |b, i| {
            let h = b.intrin(cards_ir::Intrinsic::Hash64, vec![i]);
            let start = b.bin(cards_ir::BinOp::And, h, ic(mask), Type::I64);
            let slot = b.alloca(Type::I64);
            b.store(slot, start, Type::I64);
            while_loop(
                b,
                |b| {
                    let s = b.load(slot, Type::I64);
                    let k = get_i64(b, keys, s);
                    b.cmp(CmpOp::Ne, k, i)
                },
                |b| {
                    let s = b.load(slot, Type::I64);
                    let s1 = b.add(s, ic(1));
                    let s2 = b.bin(cards_ir::BinOp::And, s1, ic(mask), Type::I64);
                    b.store(slot, s2, Type::I64);
                },
            );
            let s = b.load(slot, Type::I64);
            let a = get_i64(b, va, s);
            let bv = get_i64(b, vb, s);
            let sum = b.add(a, bv);
            set_i64(b, vc, s, sum);
            acc.add(b, sum);
        });
    });
    let out = acc.get(&mut b);
    b.ret(out);
    let f = m.add_function(b.finish());
    (m, f)
}

/// `perm(k) = (k * 0x9E37 + 7) & mask` — a bijection on [0, mask] when
/// `mask+1` is a power of two (odd multiplier).
fn perm(b: &mut FunctionBuilder, k: Value, mask: i64) -> Value {
    let mclr = b.mul(k, ic(0x9E37));
    let off = b.add(mclr, ic(7));
    b.bin(cards_ir::BinOp::And, off, ic(mask), Type::I64)
}

/// `arr[idx] : ptr` load.
fn get_ptr(b: &mut FunctionBuilder, arr: Value, idx: Value) -> Value {
    let p = b.gep_index(arr, Type::Ptr, idx);
    b.load(p, Type::Ptr)
}

/// `arr[idx] = v : ptr` store.
fn set_ptr(b: &mut FunctionBuilder, arr: Value, idx: Value, v: Value) {
    let p = b.gep_index(arr, Type::Ptr, idx);
    b.store(p, v, Type::Ptr);
}
