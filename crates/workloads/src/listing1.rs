//! Listing 1 of the paper: the two-data-structure example used throughout
//! §3–§4 and measured in Figure 4 (two 3 GB arrays, `k = 50%`, so exactly
//! one of them can be localized; a good policy picks the loop-written
//! `ds2`).

use cards_ir::{FuncId, FunctionBuilder, Module, Type, Value};

/// Listing 1 parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Listing1Params {
    /// Elements (i32) per array — ARRAY_SIZE in the paper.
    pub elems: i64,
    /// Iterations of the `ds2` re-write loop — NTIMES in the paper.
    pub ntimes: i64,
}

impl Default for Listing1Params {
    fn default() -> Self {
        Listing1Params {
            elems: 64 * 1024,
            ntimes: 10,
        }
    }
}

impl Listing1Params {
    /// Tiny configuration for unit tests.
    pub fn test() -> Self {
        Listing1Params {
            elems: 2048,
            ntimes: 4,
        }
    }

    /// Working-set bytes (two i32 arrays).
    pub fn working_set_bytes(&self) -> u64 {
        2 * self.elems as u64 * 4
    }
}

/// Build Listing 1; `main` returns `ds1[0] + ds2[0] + ds2[last]` as a
/// smoke checksum.
pub fn build(p: Listing1Params) -> (Module, FuncId) {
    let mut m = Module::new("listing1");
    let g1 = m.add_global("ds1", Type::Ptr, None);
    let g2 = m.add_global("ds2", Type::Ptr, None);

    let alloc_f = {
        let mut b = FunctionBuilder::new("alloc", vec![], Type::Ptr);
        let sz = b.iconst(p.elems * 4);
        let ptr = b.alloc(sz, Type::I32);
        b.ret(ptr);
        m.add_function(b.finish())
    };
    let set_f = {
        let mut b = FunctionBuilder::new("Set", vec![Type::Ptr, Type::I64], Type::Void);
        let (z, one) = (b.iconst(0), b.iconst(1));
        let n = b.iconst(p.elems);
        b.counted_loop(z, n, one, |b, j| {
            let ptr = b.gep_index(b.arg(0), Type::I32, j);
            b.store(ptr, b.arg(1), Type::I32);
        });
        b.ret_void();
        m.add_function(b.finish())
    };
    let main_f = {
        let mut b = FunctionBuilder::new("main", vec![], Type::I64);
        let p1 = b.call(alloc_f, vec![]);
        b.store(Value::Global(g1), p1, Type::Ptr);
        let p2 = b.call(alloc_f, vec![]);
        b.store(Value::Global(g2), p2, Type::Ptr);
        let d1 = b.load(Value::Global(g1), Type::Ptr);
        b.call(set_f, vec![d1, b.iconst(0)]);
        let d2 = b.load(Value::Global(g2), Type::Ptr);
        b.call(set_f, vec![d2, b.iconst(1)]);
        let (z, one) = (b.iconst(0), b.iconst(1));
        b.counted_loop(z, b.iconst(p.ntimes), one, |b, k| {
            let d2b = b.load(Value::Global(g2), Type::Ptr);
            b.call(set_f, vec![d2b, k]);
        });
        // checksum: ds1[0] + ds2[0] + ds2[elems-1]
        let d1r = b.load(Value::Global(g1), Type::Ptr);
        let v1 = {
            let ptr = b.gep_index(d1r, Type::I32, z);
            b.load(ptr, Type::I32)
        };
        let d2r = b.load(Value::Global(g2), Type::Ptr);
        let v2 = {
            let ptr = b.gep_index(d2r, Type::I32, z);
            b.load(ptr, Type::I32)
        };
        let v3 = {
            let last = b.iconst(p.elems - 1);
            let ptr = b.gep_index(d2r, Type::I32, last);
            b.load(ptr, Type::I32)
        };
        let s0 = b.add(v1, v2);
        let s1 = b.add(s0, v3);
        b.ret(s1);
        m.add_function(b.finish())
    };
    (m, main_f)
}

/// Native reference checksum.
pub fn reference(p: Listing1Params) -> i64 {
    // ds1 holds 0; ds2 holds the final loop value (ntimes-1, or 1 if the
    // loop never ran).
    let last = if p.ntimes > 0 { p.ntimes - 1 } else { 1 };
    2 * last
}
