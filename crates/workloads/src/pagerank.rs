//! Extension workload (not in the paper's evaluation; listed in DESIGN.md
//! as an optional extension): PageRank over the same GAP-style synthetic
//! digraph as [`crate::bfs`].
//!
//! PageRank stresses a different mix than BFS: two dense rank vectors that
//! ping-pong each iteration (hot, pinnable), a read-only CSR (streamed,
//! prefetchable), and irregular scatter writes through edge targets — a
//! useful additional data point for the remoting policies.
//!
//! Fixed-point arithmetic (Q32.32-ish scaled i64) keeps the checksum exact
//! between the IR kernel and the native reference.

use cards_ir::{FuncId, FunctionBuilder, Module, Type};

use crate::util::*;

/// PageRank parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PagerankParams {
    /// Node count.
    pub nodes: i64,
    /// Out-degree of every node.
    pub degree: i64,
    /// Power iterations.
    pub iters: i64,
}

impl Default for PagerankParams {
    fn default() -> Self {
        PagerankParams {
            nodes: 10_000,
            degree: 8,
            iters: 5,
        }
    }
}

impl PagerankParams {
    /// Tiny configuration for unit tests.
    pub fn test() -> Self {
        PagerankParams {
            nodes: 400,
            degree: 5,
            iters: 3,
        }
    }

    /// Edge count.
    pub fn edges(&self) -> i64 {
        self.nodes * self.degree
    }

    /// Approximate working-set bytes.
    pub fn working_set_bytes(&self) -> u64 {
        (4 * self.nodes as u64 + self.edges() as u64) * 8
    }
}

/// Rank scale: ranks are stored as `rank * SCALE` in i64.
const SCALE: i64 = 1 << 20;
/// Damping factor ~0.85 in the same fixed-point scale.
const DAMP_NUM: i64 = 85;
const DAMP_DEN: i64 = 100;

/// Build the PageRank program; `main` returns `sum(rank)` (fixed point).
pub fn build(p: PagerankParams) -> (Module, FuncId) {
    let n = p.nodes;
    let d = p.degree;
    let m_edges = p.edges();
    let mut m = Module::new("pagerank");
    let mut b = FunctionBuilder::new("main", vec![], Type::I64);

    let offsets = alloc_i64(&mut b, n + 1);
    let targets = alloc_i64(&mut b, m_edges);
    let rank = alloc_i64(&mut b, n);
    let next = alloc_i64(&mut b, n);

    let (z, one) = (ic(0), ic(1));

    // CSR (constant out-degree) + initial ranks.
    b.counted_loop(z, ic(n + 1), one, |b, i| {
        let off = b.mul(i, ic(d));
        set_i64(b, offsets, i, off);
    });
    b.counted_loop(z, ic(m_edges), one, |b, e| {
        let h = hash_salted(b, e, 0x9E);
        let v = urem_const(b, h, n);
        set_i64(b, targets, e, v);
    });
    let init = SCALE / n.max(1);
    b.counted_loop(z, ic(n), one, |b, i| {
        set_i64(b, rank, i, ic(init));
    });

    // Power iterations: next = base + damp * scatter(rank/deg).
    let base = (SCALE / n.max(1)) * (DAMP_DEN - DAMP_NUM) / DAMP_DEN;
    // rank/next pointers swap via stack slots.
    let cur_slot = b.alloca(Type::Ptr);
    let nxt_slot = b.alloca(Type::Ptr);
    b.store(cur_slot, rank, Type::Ptr);
    b.store(nxt_slot, next, Type::Ptr);
    b.counted_loop(z, ic(p.iters), one, |b, _it| {
        let cur = b.load(cur_slot, Type::Ptr);
        let nxt = b.load(nxt_slot, Type::Ptr);
        b.counted_loop(z, ic(n), one, |b, i| {
            set_i64(b, nxt, i, ic(base));
        });
        b.counted_loop(z, ic(n), one, |b, u| {
            let r = get_i64(b, cur, u);
            // share = damp * r / d
            let num = b.mul(r, ic(DAMP_NUM));
            let den = b.bin(cards_ir::BinOp::SDiv, num, ic(DAMP_DEN * d), Type::I64);
            let start = b.mul(u, ic(d));
            let stop = b.add(start, ic(d));
            b.counted_loop(start, stop, one, |b, e| {
                let v = get_i64(b, targets, e);
                add_i64_at(b, nxt, v, den);
            });
        });
        // swap
        let a = b.load(cur_slot, Type::Ptr);
        let c = b.load(nxt_slot, Type::Ptr);
        b.store(cur_slot, c, Type::Ptr);
        b.store(nxt_slot, a, Type::Ptr);
    });

    let acc = AccI64::new(&mut b, 0);
    {
        let cur = b.load(cur_slot, Type::Ptr);
        b.counted_loop(z, ic(n), one, |b, i| {
            let v = get_i64(b, cur, i);
            acc.add(b, v);
        });
    }
    let out = acc.get(&mut b);
    b.ret(out);
    let f = m.add_function(b.finish());
    (m, f)
}

/// Native reference with identical fixed-point arithmetic.
pub fn reference(p: PagerankParams) -> i64 {
    let n = p.nodes as usize;
    let d = p.degree as usize;
    let targets: Vec<usize> = (0..n * d)
        .map(|e| (splitmix64(e as u64 ^ 0x9E) % n as u64) as usize)
        .collect();
    let init = SCALE / p.nodes.max(1);
    let mut rank = vec![init; n];
    let mut next = vec![0i64; n];
    let base = (SCALE / p.nodes.max(1)) * (DAMP_DEN - DAMP_NUM) / DAMP_DEN;
    for _ in 0..p.iters {
        for x in next.iter_mut() {
            *x = base;
        }
        for (u, &r) in rank.iter().enumerate() {
            let den = (r * DAMP_NUM) / (DAMP_DEN * p.degree);
            for e in u * d..(u + 1) * d {
                next[targets[e]] += den;
            }
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank.iter().sum()
}
