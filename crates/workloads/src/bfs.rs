//! The `BFS` workload: breadth-first search over a synthetic graph, in the
//! style of the GAP benchmark suite (paper §5: 1.2 GB working set, 19
//! disjoint data structures, irregular access pattern).
//!
//! The graph is a constant-out-degree random digraph generated from the
//! seeded hash (edge `k` of node `u` targets `hash64(u*d + k) % n`), built
//! into CSR inside the kernel. BFS runs from node 0 with two frontier
//! queues; distance and parent arrays plus a level histogram give the DS
//! variety the paper reports.

use cards_ir::{CmpOp, FuncId, FunctionBuilder, Module, Type};

use crate::util::*;

/// BFS parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BfsParams {
    /// Node count.
    pub nodes: i64,
    /// Out-degree of every node.
    pub degree: i64,
}

impl Default for BfsParams {
    fn default() -> Self {
        BfsParams {
            nodes: 20_000,
            degree: 8,
        }
    }
}

impl BfsParams {
    /// Tiny configuration for unit tests.
    pub fn test() -> Self {
        BfsParams {
            nodes: 500,
            degree: 6,
        }
    }

    /// Edge count.
    pub fn edges(&self) -> i64 {
        self.nodes * self.degree
    }

    /// Approximate working-set bytes.
    pub fn working_set_bytes(&self) -> u64 {
        // offsets + dist + parent + 2 queues (n each) + targets (m)
        (5 * self.nodes as u64 + self.edges() as u64) * 8
    }
}

/// Build the BFS program; `main` returns `sum(dist) + sum(levels)`.
pub fn build(p: BfsParams) -> (Module, FuncId) {
    let n = p.nodes;
    let d = p.degree;
    let m_edges = p.edges();
    let mut m = Module::new("bfs");
    let mut b = FunctionBuilder::new("main", vec![], Type::I64);

    let offsets = alloc_i64(&mut b, n + 1);
    let targets = alloc_i64(&mut b, m_edges);
    let dist = alloc_i64(&mut b, n);
    let parent = alloc_i64(&mut b, n);
    let q_cur = alloc_i64(&mut b, n);
    let q_next = alloc_i64(&mut b, n);
    let level_hist = alloc_i64(&mut b, 64);

    let (z, one) = (ic(0), ic(1));

    // --- build CSR ---
    b.counted_loop(z, ic(n + 1), one, |b, i| {
        let off = b.mul(i, ic(d));
        set_i64(b, offsets, i, off);
    });
    b.counted_loop(z, ic(m_edges), one, |b, e| {
        let h = hash_salted(b, e, 0xBF5);
        let v = urem_const(b, h, n);
        set_i64(b, targets, e, v);
    });
    b.counted_loop(z, ic(n), one, |b, i| {
        set_i64(b, dist, i, ic(-1));
        set_i64(b, parent, i, ic(-1));
    });
    b.counted_loop(z, ic(64), one, |b, i| set_i64(b, level_hist, i, ic(0)));

    // --- BFS from node 0 ---
    set_i64(&mut b, dist, z, ic(0));
    set_i64(&mut b, q_cur, z, ic(0));
    // frontier sizes and level live in stack slots
    let cur_cnt = AccI64::new(&mut b, 1);
    let next_cnt = AccI64::new(&mut b, 0);
    let level = AccI64::new(&mut b, 0);
    // queue pointers swap each level: keep them in stack slots
    let cur_slot = b.alloca(Type::Ptr);
    let next_slot = b.alloca(Type::Ptr);
    b.store(cur_slot, q_cur, Type::Ptr);
    b.store(next_slot, q_next, Type::Ptr);

    // while cur_cnt > 0
    let head = b.new_block();
    let body = b.new_block();
    let done = b.new_block();
    b.br(head);
    b.switch_to(head);
    let cc = cur_cnt.get(&mut b);
    let nonempty = b.cmp(CmpOp::Sgt, cc, z);
    b.cond_br(nonempty, body, done);

    b.switch_to(body);
    {
        // record level size in the histogram
        let lv = level.get(&mut b);
        let lv_clamped = min_const(&mut b, lv, 63);
        let sz = cur_cnt.get(&mut b);
        add_i64_at(&mut b, level_hist, lv_clamped, sz);
        // for j in 0..cur_cnt: expand node
        let cur_q = b.load(cur_slot, Type::Ptr);
        let nq = b.load(next_slot, Type::Ptr);
        let cc2 = cur_cnt.get(&mut b);
        b.counted_loop(z, cc2, one, |b, j| {
            let u = get_i64(b, cur_q, j);
            let du = get_i64(b, dist, u);
            let start = get_i64(b, offsets, u);
            let u1 = b.add(u, ic(1));
            let stop = get_i64(b, offsets, u1);
            b.counted_loop(start, stop, one, |b, e| {
                let v = get_i64(b, targets, e);
                let dv = get_i64(b, dist, v);
                let unseen = b.cmp(CmpOp::Slt, dv, ic(0));
                if_then(b, unseen, |b| {
                    let dnew = b.add(du, ic(1));
                    set_i64(b, dist, v, dnew);
                    set_i64(b, parent, v, u);
                    let nc = next_cnt.get(b);
                    set_i64(b, nq, nc, v);
                    next_cnt.add(b, ic(1));
                });
            });
        });
        // swap queues, advance level
        let a = b.load(cur_slot, Type::Ptr);
        let c = b.load(next_slot, Type::Ptr);
        b.store(cur_slot, c, Type::Ptr);
        b.store(next_slot, a, Type::Ptr);
        let nc = next_cnt.get(&mut b);
        b.store(cur_cnt.0, nc, Type::I64);
        b.store(next_cnt.0, z, Type::I64);
        level.add(&mut b, ic(1));
    }
    b.br(head);

    b.switch_to(done);
    let acc = AccI64::new(&mut b, 0);
    checksum_i64(&mut b, &acc, dist, n);
    checksum_i64(&mut b, &acc, level_hist, 64);
    let out = acc.get(&mut b);
    b.ret(out);
    let main_f = m.add_function(b.finish());
    (m, main_f)
}

/// Native reference computing the identical checksum.
pub fn reference(p: BfsParams) -> i64 {
    let n = p.nodes as usize;
    let d = p.degree as usize;
    let targets: Vec<usize> = (0..n * d)
        .map(|e| (splitmix64(e as u64 ^ 0xBF5) % n as u64) as usize)
        .collect();
    let mut dist = vec![-1i64; n];
    let mut level_hist = [0i64; 64];
    let mut cur = vec![0usize];
    dist[0] = 0;
    let mut level = 0usize;
    while !cur.is_empty() {
        level_hist[level.min(63)] += cur.len() as i64;
        let mut next = Vec::new();
        for &u in &cur {
            for &v in &targets[u * d..(u + 1) * d] {
                if dist[v] < 0 {
                    dist[v] = dist[u] + 1;
                    next.push(v);
                }
            }
        }
        cur = next;
        level += 1;
    }
    dist.iter().sum::<i64>() + level_hist.iter().sum::<i64>()
}
