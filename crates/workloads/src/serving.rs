//! Serving-tier workload: the kvstore split into a shared load phase and a
//! per-request GET path, so N worker VMs can run thousands of Zipfian
//! sessions against one sharded remote tier.
//!
//! Three entry points instead of kvstore's single `main`:
//!
//! - `setup()` — builds the hash index + value log. Every worker's setup
//!   produces identical *final* bytes, but a cache-starved load phase
//!   evicts byte-different intermediate states, so the concurrent harness
//!   serializes setup + quiesce per worker (see `cards_vm::worker`);
//! - `request(tenant, i)` — one session operation: a salted Zipf-ish key
//!   pick, an index probe, and a value-log read. **GET-only**: the serve
//!   phase never mutates shared structures, which is what makes the
//!   concurrent final state deterministic (see DESIGN.md §13);
//! - `main()` — setup plus every tenant's whole session serially; the
//!   serial-replay oracle and the native reference both use it.
//!
//! DS pointers cross the function boundary through globals (the Listing-1
//! idiom), which the DSA pass resolves interprocedurally.

use cards_ir::{CmpOp, FuncId, FunctionBuilder, Module, Type, Value};

use crate::util::*;

/// Tenant salt folded into every session hash.
const TENANT_SALT: i64 = 0x5E55;

/// Serving workload parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServingParams {
    /// Distinct keys (table capacity is the next power of two above 2×).
    pub keys: i64,
    /// Concurrent sessions simulated (split across workers).
    pub tenants: i64,
    /// Operations per session.
    pub ops_per_tenant: i64,
}

impl Default for ServingParams {
    fn default() -> Self {
        ServingParams {
            keys: 4_096,
            tenants: 2_000,
            ops_per_tenant: 20,
        }
    }
}

impl ServingParams {
    /// Tiny configuration for unit tests.
    pub fn test() -> Self {
        ServingParams {
            keys: 256,
            tenants: 16,
            ops_per_tenant: 40,
        }
    }

    fn cap(&self) -> i64 {
        (2 * self.keys.max(1) as u64).next_power_of_two() as i64
    }

    /// Approximate working-set bytes (index + value log).
    pub fn working_set_bytes(&self) -> u64 {
        (2 * self.cap() as u64 + self.keys as u64) * 8
    }

    /// Total request count across all tenants.
    pub fn total_requests(&self) -> u64 {
        (self.tenants.max(0) as u64) * (self.ops_per_tenant.max(0) as u64)
    }
}

/// Zipf-ish skew shared with kvstore: 80% of ops hit the bottom 20%.
fn skewed_key(h: u64, keys: u64) -> u64 {
    let hot = keys / 5;
    if h % 10 < 8 {
        (h >> 8) % hot.max(1)
    } else {
        (h >> 8) % keys
    }
}

/// Session hash for operation `i` of `tenant`.
fn session_hash(tenant: u64, i: u64) -> u64 {
    splitmix64(i ^ splitmix64(tenant ^ TENANT_SALT as u64))
}

/// Build the serving program; returns the module and `main`'s id.
pub fn build(p: ServingParams) -> (Module, FuncId) {
    let (m, main_f) = emit(p, true);
    (m, main_f.expect("emit(with_main) returns main"))
}

/// Build the *split* serving program: `setup` and `request` only, with no
/// internal caller. Both become DSA entry points, so neither grows
/// threaded handle parameters and a host (the concurrent worker harness)
/// can invoke them directly. `setup` owns every DS instance and runs its
/// `DsInit`s; `request` reaches the structures through globals, whose
/// FarPtrs carry the DS identity.
pub fn build_split(p: ServingParams) -> Module {
    emit(p, false).0
}

fn emit(p: ServingParams, with_main: bool) -> (Module, Option<FuncId>) {
    let keys = p.keys;
    let cap = p.cap();
    let mask = cap - 1;
    let mut m = Module::new("serving");
    let g_index_keys = m.add_global("index_keys", Type::Ptr, None);
    let g_index_vptr = m.add_global("index_vptr", Type::Ptr, None);
    let g_vlog = m.add_global("vlog", Type::Ptr, None);

    // --- setup(): allocate + load every key once, publish via globals ---
    let setup_f = {
        let mut b = FunctionBuilder::new("setup", vec![], Type::I64);
        let index_keys = alloc_i64(&mut b, cap);
        let index_vptr = alloc_i64(&mut b, cap);
        let vlog = alloc_i64(&mut b, keys);
        let (z, one) = (ic(0), ic(1));
        b.counted_loop(z, ic(cap), one, |b, s| set_i64(b, index_keys, s, ic(-1)));
        b.counted_loop(z, ic(keys), one, |b, k| {
            let hh = b.intrin(cards_ir::Intrinsic::Hash64, vec![k]);
            let start = b.bin(cards_ir::BinOp::And, hh, ic(mask), Type::I64);
            let slot = b.alloca(Type::I64);
            b.store(slot, start, Type::I64);
            while_loop(
                b,
                |b| {
                    let s = b.load(slot, Type::I64);
                    let cur = get_i64(b, index_keys, s);
                    b.cmp(CmpOp::Ne, cur, ic(-1))
                },
                |b| {
                    let s = b.load(slot, Type::I64);
                    let s1 = b.add(s, one);
                    let s2 = b.bin(cards_ir::BinOp::And, s1, ic(mask), Type::I64);
                    b.store(slot, s2, Type::I64);
                },
            );
            let s = b.load(slot, Type::I64);
            set_i64(b, index_keys, s, k);
            let v = hash_salted(b, k, 0x71);
            let v = urem_const(b, v, 1_000_000);
            set_i64(b, vlog, k, v);
            set_i64(b, index_vptr, s, k);
        });
        b.store(Value::Global(g_index_keys), index_keys, Type::Ptr);
        b.store(Value::Global(g_index_vptr), index_vptr, Type::Ptr);
        b.store(Value::Global(g_vlog), vlog, Type::Ptr);
        b.ret(ic(keys));
        m.add_function(b.finish())
    };

    // --- request(tenant, i): salted Zipfian GET ---
    let request_f = {
        let mut b = FunctionBuilder::new("request", vec![Type::I64, Type::I64], Type::I64);
        let index_keys = b.load(Value::Global(g_index_keys), Type::Ptr);
        let index_vptr = b.load(Value::Global(g_index_vptr), Type::Ptr);
        let vlog = b.load(Value::Global(g_vlog), Type::Ptr);
        let (tenant, op) = (b.arg(0), b.arg(1));
        let th = hash_salted(&mut b, tenant, TENANT_SALT);
        let x = b.bin(cards_ir::BinOp::Xor, op, th, Type::I64);
        let h = b.intrin(cards_ir::Intrinsic::Hash64, vec![x]);
        // key = skewed_key(h, keys)
        let hot = ic((keys / 5).max(1));
        let hsel = urem_const(&mut b, h, 10);
        let hshift = b.bin(cards_ir::BinOp::LShr, h, ic(8), Type::I64);
        let khot = b.bin(cards_ir::BinOp::URem, hshift, hot, Type::I64);
        let kall = urem_const(&mut b, hshift, keys);
        let is_hot = b.cmp(CmpOp::Ult, hsel, ic(8));
        let k = b.select(is_hot, khot, kall, Type::I64);
        // probe (every key is present after setup)
        let hh = b.intrin(cards_ir::Intrinsic::Hash64, vec![k]);
        let start = b.bin(cards_ir::BinOp::And, hh, ic(mask), Type::I64);
        let slot = b.alloca(Type::I64);
        b.store(slot, start, Type::I64);
        while_loop(
            &mut b,
            |b| {
                let s = b.load(slot, Type::I64);
                let cur = get_i64(b, index_keys, s);
                b.cmp(CmpOp::Ne, cur, k)
            },
            |b| {
                let s = b.load(slot, Type::I64);
                let s1 = b.add(s, ic(1));
                let s2 = b.bin(cards_ir::BinOp::And, s1, ic(mask), Type::I64);
                b.store(slot, s2, Type::I64);
            },
        );
        let s = b.load(slot, Type::I64);
        let off = get_i64(&mut b, index_vptr, s);
        let v = get_i64(&mut b, vlog, off);
        b.ret(v);
        m.add_function(b.finish())
    };

    if !with_main {
        let _ = request_f;
        return (m, None);
    }

    // --- main(): setup + every session serially (oracle + reference) ---
    let main_f = {
        let mut b = FunctionBuilder::new("main", vec![], Type::I64);
        b.call(setup_f, vec![]);
        let acc = AccI64::new(&mut b, 0);
        let (z, one) = (ic(0), ic(1));
        b.counted_loop(z, ic(p.tenants), one, |b, t| {
            b.counted_loop(z, ic(p.ops_per_tenant), one, |b, i| {
                let v = b.call(request_f, vec![t, i]);
                acc.add(b, v);
            });
        });
        let out = acc.get(&mut b);
        b.ret(out);
        m.add_function(b.finish())
    };
    (m, Some(main_f))
}

/// Native value stored for `key` by the load phase.
fn stored_value(key: u64) -> i64 {
    (splitmix64(key ^ 0x71) % 1_000_000) as i64
}

/// Native reference for one request.
fn request_reference(p: ServingParams, tenant: u64, i: u64) -> i64 {
    let h = session_hash(tenant, i);
    let k = skewed_key(h, p.keys as u64);
    stored_value(k)
}

/// Native checksum of one tenant's whole session.
pub fn reference_tenant(p: ServingParams, tenant: u64) -> i64 {
    let mut acc = 0i64;
    for i in 0..p.ops_per_tenant.max(0) as u64 {
        acc = acc.wrapping_add(request_reference(p, tenant, i));
    }
    acc
}

/// Native reference for `main` (all sessions, serially).
pub fn reference(p: ServingParams) -> i64 {
    let mut acc = 0i64;
    for t in 0..p.tenants.max(0) as u64 {
        acc = acc.wrapping_add(reference_tenant(p, t));
    }
    acc
}
