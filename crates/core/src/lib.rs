//! # cards-core — Compiler-aided Remote Data Structures
//!
//! Facade crate for the CaRDS reproduction (Tauro, Dougherty, Hale —
//! SC Workshops '25). Re-exports the whole stack and offers a one-call
//! entry point, [`run_far_memory`], that compiles an IR program with the
//! CaRDS pipeline and executes it on the far-memory runtime.
//!
//! ## The stack
//!
//! | crate | role |
//! |---|---|
//! | [`ir`] | typed SSA IR (LLVM stand-in), builder, verifier, printer/parser, analyses |
//! | [`dsa`] | SeaDSA-style context-sensitive data structure analysis |
//! | [`passes`] | pool allocation, guards, redundant-guard elimination, code versioning, prefetch analysis |
//! | [`net`] | simulated RDMA-class interconnect with a calibrated cycle model |
//! | [`runtime`] | AIFM-style object-granular far-memory runtime with per-DS policies |
//! | [`vm`] | deterministic interpreter + cycle accounting |
//! | [`workloads`] | the paper's benchmarks (analytics, BFS, fdtd-apml, Fig-9 micros) |
//! | [`baselines`] | TrackFM / Mira / local-only comparators and the run harness |
//! | [`difftest`] | differential-testing oracle fuzzing the pipeline against the VM |
//!
//! ## Quick start
//!
//! ```
//! use cards_core::prelude::*;
//!
//! // Build the paper's Listing 1 and run it under the Max Use policy with
//! // half of its working set available locally.
//! let params = cards_core::workloads::listing1::Listing1Params::test();
//! let ws = params.working_set_bytes();
//! let report = cards_core::run_far_memory(
//!     &move || cards_core::workloads::listing1::build(params),
//!     RemotingPolicy::MaxUse,
//!     50,
//!     MemoryBudget::fraction_of(ws, 0.5, 0.1),
//! )
//! .unwrap();
//! assert_eq!(report.checksum, cards_core::workloads::listing1::reference(params));
//! assert!(report.ds_count >= 2);
//! ```

pub use cards_baselines as baselines;
pub use cards_difftest as difftest;
pub use cards_dsa as dsa;
pub use cards_ir as ir;
pub use cards_net as net;
pub use cards_passes as passes;
pub use cards_runtime as runtime;
pub use cards_vm as vm;
pub use cards_workloads as workloads;

pub use cards_baselines::{run_system, HarnessError, MemoryBudget, RunResult, System};
pub use cards_passes::{compile, CompileOptions, Compiled};
pub use cards_runtime::RemotingPolicy;

/// Common imports for applications embedding CaRDS.
pub mod prelude {
    pub use crate::{run_far_memory, run_system, MemoryBudget, RemotingPolicy, RunResult, System};
    pub use cards_ir::{FunctionBuilder, Module, Type, Value};
    pub use cards_passes::{compile, CompileOptions};
}

/// Compile `build()`'s program with the full CaRDS pipeline and run it on
/// the simulated far-memory setup under `policy`/`k` and `budget`.
pub fn run_far_memory(
    build: &dyn Fn() -> (cards_ir::Module, cards_ir::FuncId),
    policy: RemotingPolicy,
    k: u32,
    budget: MemoryBudget,
) -> Result<RunResult, HarnessError> {
    run_system(build, System::Cards { policy, k }, budget)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_runs_listing1() {
        let p = workloads::listing1::Listing1Params::test();
        let ws = p.working_set_bytes();
        let r = run_far_memory(
            &move || workloads::listing1::build(p),
            RemotingPolicy::Linear,
            100,
            MemoryBudget::fraction_of(ws, 1.0, 0.2),
        )
        .unwrap();
        assert_eq!(r.checksum, workloads::listing1::reference(p));
        assert_eq!(r.ds_count, 2);
    }
}
