//! DSA graphs: abstract memory objects with typed field edges.
//!
//! One node represents a set of memory objects that the analysis cannot
//! distinguish; unification (union-find) merges nodes as the analysis
//! discovers aliasing. Field edges (`node × byte-offset → node`) give the
//! analysis field sensitivity; a node whose offsets are no longer tracked
//! is *collapsed* (all edges unified at offset 0), exactly as in
//! Lattner-Adve DSA and SeaDSA.

use std::collections::{BTreeMap, BTreeSet};

use cards_ir::{FuncId, GlobalId, InstId, Type};

/// Node identifier within one [`Graph`]. Always resolve with
/// [`Graph::find`] before comparing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Minimal bitflags implementation (avoids an extra dependency).
macro_rules! bitflags_lite {
    (
        $(#[$meta:meta])*
        pub struct $name:ident : $ty:ty {
            $(
                $(#[$fmeta:meta])*
                const $flag:ident = $val:expr;
            )*
        }
    ) => {
        $(#[$meta])*
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
        pub struct $name(pub $ty);

        impl $name {
            $(
                $(#[$fmeta])*
                pub const $flag: $name = $name($val);
            )*

            /// No flags set.
            pub fn empty() -> Self { $name(0) }
            /// Whether all bits of `other` are set.
            pub fn contains(self, other: $name) -> bool { self.0 & other.0 == other.0 }
            /// Whether any bit of `other` is set.
            pub fn intersects(self, other: $name) -> bool { self.0 & other.0 != 0 }
        }

        impl std::ops::BitOr for $name {
            type Output = $name;
            fn bitor(self, rhs: $name) -> $name { $name(self.0 | rhs.0) }
        }
        impl std::ops::BitOrAssign for $name {
            fn bitor_assign(&mut self, rhs: $name) { self.0 |= rhs.0; }
        }
    };
}

bitflags_lite! {
    /// Properties of the memory objects a node stands for.
    pub struct NodeFlags: u16 {
        /// Allocated on the heap (malloc).
        const HEAP = 1;
        /// Allocated on the stack (alloca).
        const STACK = 2;
        /// A global variable's storage.
        const GLOBAL = 4;
        /// Escapes its function via return value.
        const RETURNED = 8;
        /// Reachable from a function argument.
        const ARG = 16;
        /// Stored into (or loaded from) a global.
        const GLOBAL_ESCAPE = 32;
        /// Came from an unknown source (inttoptr, undef).
        const EXTERNAL = 64;
        /// Passed to a call.
        const PASSED = 128;
    }
}

/// A heap allocation site (module-wide identity).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AllocSite {
    /// Function containing the `alloc`.
    pub func: FuncId,
    /// The `alloc` instruction.
    pub inst: InstId,
}

/// Payload stored on union-find roots.
#[derive(Clone, Debug, Default)]
pub struct NodeData {
    /// Accumulated property flags.
    pub flags: NodeFlags,
    /// Typed field edges: byte offset → pointee node.
    pub edges: BTreeMap<u64, NodeId>,
    /// Heap allocation sites folded into this node.
    pub alloc_sites: BTreeSet<AllocSite>,
    /// Element types observed for this node's objects.
    pub tys: BTreeSet<Type>,
    /// Globals folded into this node.
    pub globals: BTreeSet<GlobalId>,
    /// Offsets are no longer tracked (all edges live at 0).
    pub collapsed: bool,
}

/// Byte offset of a cell within a node. `Unknown` offsets collapse nodes
/// when used for field access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Offset {
    /// A tracked constant offset.
    Known(u64),
    /// Untrackable (pointer arithmetic the analysis cannot follow).
    Unknown,
}

impl Offset {
    /// Add a constant displacement.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, d: u64) -> Offset {
        match self {
            Offset::Known(o) => Offset::Known(o + d),
            Offset::Unknown => Offset::Unknown,
        }
    }
}

/// A pointer's view into a node: the node plus a byte offset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cell {
    /// Target node (resolve via [`Graph::find`] before use).
    pub node: NodeId,
    /// Offset within the node.
    pub offset: Offset,
}

impl Cell {
    /// Cell at offset zero of `node`.
    pub fn at(node: NodeId) -> Cell {
        Cell {
            node,
            offset: Offset::Known(0),
        }
    }
}

/// A DSA points-to graph with union-find node merging.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    parent: Vec<u32>,
    rank: Vec<u8>,
    data: Vec<Option<NodeData>>, // Some(..) only on roots
}

impl Graph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a fresh node with `flags`.
    pub fn new_node(&mut self, flags: NodeFlags) -> NodeId {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        self.rank.push(0);
        self.data.push(Some(NodeData {
            flags,
            ..Default::default()
        }));
        NodeId(id)
    }

    /// Number of node slots (including merged ones).
    pub fn slots(&self) -> usize {
        self.parent.len()
    }

    /// Union-find root of `n` (path-halving, no allocation).
    pub fn find(&self, mut n: NodeId) -> NodeId {
        let mut i = n.0 as usize;
        while self.parent[i] != i as u32 {
            i = self.parent[i] as usize;
        }
        // second pass: compress via interior mutability not available; this
        // is a read-only find, so we simply return the root.
        n = NodeId(i as u32);
        n
    }

    fn find_compress(&mut self, n: NodeId) -> NodeId {
        let mut i = n.0 as usize;
        while self.parent[i] != i as u32 {
            let gp = self.parent[self.parent[i] as usize];
            self.parent[i] = gp;
            i = gp as usize;
        }
        NodeId(i as u32)
    }

    /// Data of a node's root.
    pub fn node(&self, n: NodeId) -> &NodeData {
        let r = self.find(n);
        self.data[r.0 as usize].as_ref().expect("root has data")
    }

    /// Mutable data of a node's root.
    pub fn node_mut(&mut self, n: NodeId) -> &mut NodeData {
        let r = self.find_compress(n);
        self.data[r.0 as usize].as_mut().expect("root has data")
    }

    /// Add flags to a node.
    pub fn add_flags(&mut self, n: NodeId, flags: NodeFlags) {
        self.node_mut(n).flags |= flags;
    }

    /// Unify two nodes (and, transitively, their matching field edges).
    pub fn unify(&mut self, a: NodeId, b: NodeId) {
        let mut work = vec![(a, b)];
        while let Some((a, b)) = work.pop() {
            let ra = self.find_compress(a);
            let rb = self.find_compress(b);
            if ra == rb {
                continue;
            }
            // union by rank
            let (win, lose) = if self.rank[ra.0 as usize] >= self.rank[rb.0 as usize] {
                (ra, rb)
            } else {
                (rb, ra)
            };
            if self.rank[win.0 as usize] == self.rank[lose.0 as usize] {
                self.rank[win.0 as usize] += 1;
            }
            self.parent[lose.0 as usize] = win.0;
            let lose_data = self.data[lose.0 as usize].take().expect("root");
            let win_data = self.data[win.0 as usize].as_mut().expect("root");
            win_data.flags |= lose_data.flags;
            win_data.alloc_sites.extend(lose_data.alloc_sites);
            win_data.tys.extend(lose_data.tys);
            win_data.globals.extend(lose_data.globals);
            let was_collapsed = win_data.collapsed || lose_data.collapsed;
            win_data.collapsed = was_collapsed;
            // merge edges: same-offset targets must unify
            for (off, tgt) in lose_data.edges {
                let off = if was_collapsed { 0 } else { off };
                match win_data.edges.get(&off) {
                    Some(&existing) => work.push((existing, tgt)),
                    None => {
                        win_data.edges.insert(off, tgt);
                    }
                }
            }
            if was_collapsed {
                // fold all surviving edges into offset 0
                let win_data = self.data[win.0 as usize].as_mut().expect("root");
                let edges = std::mem::take(&mut win_data.edges);
                let mut it = edges.into_values();
                if let Some(first) = it.next() {
                    for other in it {
                        work.push((first, other));
                    }
                    self.data[win.0 as usize]
                        .as_mut()
                        .expect("root")
                        .edges
                        .insert(0, first);
                }
            }
        }
    }

    /// Collapse a node: stop tracking offsets (all edges unify at 0).
    pub fn collapse(&mut self, n: NodeId) {
        let r = self.find_compress(n);
        let data = self.data[r.0 as usize].as_mut().expect("root");
        if data.collapsed {
            return;
        }
        data.collapsed = true;
        let edges = std::mem::take(&mut data.edges);
        let mut it = edges.into_values();
        if let Some(first) = it.next() {
            for other in it {
                self.unify(first, other);
            }
            // re-find r: unify above may have merged r itself
            let r2 = self.find_compress(NodeId(r.0));
            let first = self.find_compress(first);
            self.data[r2.0 as usize]
                .as_mut()
                .expect("root")
                .edges
                .insert(0, first);
        }
    }

    /// The node pointed to by the field of `cell` (created if missing).
    /// An `Unknown` offset collapses the node first.
    pub fn field_target(&mut self, cell: Cell) -> NodeId {
        let node = self.find_compress(cell.node);
        let off = match cell.offset {
            Offset::Known(o) if !self.node(node).collapsed => o,
            Offset::Known(_) => 0,
            Offset::Unknown => {
                self.collapse(node);
                0
            }
        };
        let node = self.find_compress(node);
        if let Some(&t) = self.node(node).edges.get(&off) {
            return self.find_compress(t);
        }
        let fresh = self.new_node(NodeFlags::empty());
        // re-resolve: new_node cannot merge, node still root or findable
        self.node_mut(node).edges.insert(off, fresh);
        fresh
    }

    /// Iterate root nodes.
    pub fn roots(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.parent.len() as u32)
            .map(NodeId)
            .filter(move |&n| self.parent[n.0 as usize] == n.0)
    }

    /// All nodes reachable from `starts` through field edges (roots only).
    pub fn reachable(&self, starts: impl IntoIterator<Item = NodeId>) -> BTreeSet<NodeId> {
        let mut seen = BTreeSet::new();
        let mut stack: Vec<NodeId> = starts.into_iter().map(|n| self.find(n)).collect();
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            for &t in self.node(n).edges.values() {
                stack.push(self.find(t));
            }
        }
        seen
    }

    /// Whether a node (or anything it reaches) can reach itself — the
    /// "recursive data structure" test used for DsMeta.
    pub fn is_recursive(&self, n: NodeId) -> bool {
        let start = self.find(n);
        // DFS from each successor; recursive iff start is re-reached.
        let mut stack: Vec<NodeId> = self
            .node(start)
            .edges
            .values()
            .map(|&t| self.find(t))
            .collect();
        let mut seen = BTreeSet::new();
        while let Some(x) = stack.pop() {
            if x == start {
                return true;
            }
            if !seen.insert(x) {
                continue;
            }
            for &t in self.node(x).edges.values() {
                stack.push(self.find(t));
            }
        }
        false
    }

    /// Clone the subgraph reachable from `roots` from `src` into `self`.
    /// Returns the old→new node map (keyed by `src` roots).
    pub fn clone_from(
        &mut self,
        src: &Graph,
        roots: impl IntoIterator<Item = NodeId>,
    ) -> BTreeMap<NodeId, NodeId> {
        let reach = src.reachable(roots);
        let mut map = BTreeMap::new();
        for &old in &reach {
            let data = src.node(old);
            let new = self.new_node(data.flags);
            {
                let nd = self.node_mut(new);
                nd.alloc_sites = data.alloc_sites.clone();
                nd.tys = data.tys.clone();
                nd.globals = data.globals.clone();
                nd.collapsed = data.collapsed;
            }
            map.insert(old, new);
        }
        // wire edges
        for &old in &reach {
            let new = map[&old];
            let edges: Vec<(u64, NodeId)> = src
                .node(old)
                .edges
                .iter()
                .map(|(&o, &t)| (o, src.find(t)))
                .collect();
            for (off, tgt) in edges {
                let nt = map[&tgt];
                self.node_mut(new).edges.insert(off, nt);
            }
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unify_merges_flags_and_sites() {
        let mut g = Graph::new();
        let a = g.new_node(NodeFlags::HEAP);
        let b = g.new_node(NodeFlags::RETURNED);
        g.node_mut(a).alloc_sites.insert(AllocSite {
            func: FuncId(0),
            inst: InstId(1),
        });
        g.unify(a, b);
        assert_eq!(g.find(a), g.find(b));
        let d = g.node(a);
        assert!(d.flags.contains(NodeFlags::HEAP));
        assert!(d.flags.contains(NodeFlags::RETURNED));
        assert_eq!(d.alloc_sites.len(), 1);
    }

    #[test]
    fn unify_is_transitive_through_edges() {
        let mut g = Graph::new();
        let a = g.new_node(NodeFlags::empty());
        let b = g.new_node(NodeFlags::empty());
        let ta = g.field_target(Cell {
            node: a,
            offset: Offset::Known(8),
        });
        let tb = g.field_target(Cell {
            node: b,
            offset: Offset::Known(8),
        });
        assert_ne!(g.find(ta), g.find(tb));
        g.unify(a, b);
        assert_eq!(g.find(ta), g.find(tb), "same-offset targets must merge");
    }

    #[test]
    fn collapse_folds_edges() {
        let mut g = Graph::new();
        let a = g.new_node(NodeFlags::empty());
        let t0 = g.field_target(Cell {
            node: a,
            offset: Offset::Known(0),
        });
        let t8 = g.field_target(Cell {
            node: a,
            offset: Offset::Known(8),
        });
        g.collapse(a);
        assert_eq!(g.find(t0), g.find(t8));
        assert!(g.node(a).collapsed);
        // post-collapse field access all goes to offset 0
        let t = g.field_target(Cell {
            node: a,
            offset: Offset::Known(100),
        });
        assert_eq!(g.find(t), g.find(t0));
    }

    #[test]
    fn unknown_offset_collapses() {
        let mut g = Graph::new();
        let a = g.new_node(NodeFlags::empty());
        let _ = g.field_target(Cell {
            node: a,
            offset: Offset::Known(16),
        });
        let _ = g.field_target(Cell {
            node: a,
            offset: Offset::Unknown,
        });
        assert!(g.node(a).collapsed);
    }

    #[test]
    fn recursion_detection() {
        let mut g = Graph::new();
        // node -> (8) -> node  (a linked list)
        let n = g.new_node(NodeFlags::HEAP);
        let t = g.field_target(Cell {
            node: n,
            offset: Offset::Known(8),
        });
        g.unify(t, n);
        assert!(g.is_recursive(n));
        // plain array node is not recursive
        let m = g.new_node(NodeFlags::HEAP);
        assert!(!g.is_recursive(m));
        // two-level cycle: a -> b -> a
        let a = g.new_node(NodeFlags::HEAP);
        let b = g.field_target(Cell::at(a));
        let back = g.field_target(Cell::at(b));
        g.unify(back, a);
        assert!(g.is_recursive(a));
        assert!(g.is_recursive(b));
    }

    #[test]
    fn clone_from_preserves_structure_and_separation() {
        let mut src = Graph::new();
        let a = src.new_node(NodeFlags::HEAP);
        let child = src.field_target(Cell {
            node: a,
            offset: Offset::Known(8),
        });
        src.add_flags(child, NodeFlags::HEAP);
        let mut dst = Graph::new();
        let m1 = dst.clone_from(&src, [a]);
        let m2 = dst.clone_from(&src, [a]);
        // two clones are disjoint (context sensitivity!)
        assert_ne!(dst.find(m1[&a]), dst.find(m2[&a]));
        let c1 = dst.node(m1[&a]).edges[&8];
        let c2 = dst.node(m2[&a]).edges[&8];
        assert_ne!(dst.find(c1), dst.find(c2));
        assert!(dst.node(c1).flags.contains(NodeFlags::HEAP));
    }

    #[test]
    fn reachable_walks_edges() {
        let mut g = Graph::new();
        let a = g.new_node(NodeFlags::empty());
        let b = g.field_target(Cell::at(a));
        let c = g.field_target(Cell::at(b));
        let lone = g.new_node(NodeFlags::empty());
        let r = g.reachable([a]);
        assert!(r.contains(&g.find(a)) && r.contains(&g.find(b)) && r.contains(&g.find(c)));
        assert!(!r.contains(&g.find(lone)));
    }

    #[test]
    fn flags_ops() {
        let f = NodeFlags::HEAP | NodeFlags::RETURNED;
        assert!(f.contains(NodeFlags::HEAP));
        assert!(f.intersects(NodeFlags::RETURNED));
        assert!(!f.contains(NodeFlags::STACK));
        assert!(!NodeFlags::empty().intersects(f));
    }
}
