//! Module-level DSA tests, including the paper's Listing 1 scenario.

use crate::interproc::ModuleDsa;
use cards_ir::{FunctionBuilder, Module, Type, Value};

/// The paper's Listing 1: two globals ds1/ds2 both filled through the
/// same `alloc()` helper, then written through `Set`. DSA must find TWO
/// disjoint data structures (Figure 2) despite the single malloc site.
pub(crate) fn listing1() -> (Module, cards_ir::FuncId) {
    let mut m = Module::new("listing1");
    let g1 = m.add_global("ds1", Type::Ptr, None);
    let g2 = m.add_global("ds2", Type::Ptr, None);

    // fn alloc() -> ptr { return malloc(ARRAY_SIZE) }
    let alloc_f = {
        let mut b = FunctionBuilder::new("alloc", vec![], Type::Ptr);
        let p = b.alloc(b.iconst(8 * 1024), Type::I32);
        b.ret(p);
        m.add_function(b.finish())
    };
    // fn Set(ds: ptr, val: i64) { for j in 0..N { ds[j] = val } }
    let set_f = {
        let mut b = FunctionBuilder::new("Set", vec![Type::Ptr, Type::I64], Type::Void);
        let z = b.iconst(0);
        let n = b.iconst(2048);
        let one = b.iconst(1);
        b.counted_loop(z, n, one, |b, j| {
            let p = b.gep_index(b.arg(0), Type::I32, j);
            b.store(p, b.arg(1), Type::I32);
        });
        b.ret_void();
        m.add_function(b.finish())
    };
    // fn main() { ds1 = alloc(); ds2 = alloc(); Set(ds1,0); Set(ds2,1);
    //             for k in 0..NTIMES { Set(ds2,k) } }
    let main_f = {
        let mut b = FunctionBuilder::new("main", vec![], Type::Void);
        let p1 = b.call(alloc_f, vec![]);
        b.store(Value::Global(g1), p1, Type::Ptr);
        let p2 = b.call(alloc_f, vec![]);
        b.store(Value::Global(g2), p2, Type::Ptr);
        let d1 = b.load(Value::Global(g1), Type::Ptr);
        b.call(set_f, vec![d1, b.iconst(0)]);
        let d2 = b.load(Value::Global(g2), Type::Ptr);
        b.call(set_f, vec![d2, b.iconst(1)]);
        let z = b.iconst(0);
        let n = b.iconst(10);
        let one = b.iconst(1);
        b.counted_loop(z, n, one, |b, k| {
            let d2b = b.load(Value::Global(g2), Type::Ptr);
            b.call(set_f, vec![d2b, k]);
        });
        b.ret_void();
        m.add_function(b.finish())
    };
    (m, main_f)
}

#[test]
fn listing1_finds_two_disjoint_structures() {
    let (m, main_f) = listing1();
    assert!(cards_ir::verify_module(&m).is_empty());
    let dsa = ModuleDsa::analyze(&m);
    assert_eq!(dsa.entries, vec![main_f]);
    // Exactly the two instances of Figure 2.
    assert_eq!(dsa.instances.len(), 2, "instances: {:?}", dsa.instances);
    let names: Vec<&str> = dsa.instances.iter().map(|i| i.name.as_str()).collect();
    assert!(names.contains(&"ds1"), "names: {names:?}");
    assert!(names.contains(&"ds2"));
    for inst in &dsa.instances {
        assert_eq!(inst.owner, main_f);
        assert!(!inst.recursive);
        assert_eq!(inst.alloc_sites.len(), 1);
    }
    // They are distinct nodes in main's graph.
    let g = &dsa.func(main_f).graph;
    assert_ne!(g.find(dsa.instances[0].node), g.find(dsa.instances[1].node));
}

#[test]
fn listing1_usage_prefers_ds2() {
    let (m, _) = listing1();
    let dsa = ModuleDsa::analyze(&m);
    let ds1 = dsa.instances.iter().find(|i| i.name == "ds1").unwrap();
    let ds2 = dsa.instances.iter().find(|i| i.name == "ds2").unwrap();
    let u1 = &dsa.usage[ds1.id as usize];
    let u2 = &dsa.usage[ds2.id as usize];
    // ds2 is written in the k-loop as well: higher use score (Eq. 1).
    assert!(
        u2.use_score() > u1.use_score(),
        "ds2 {:?} vs ds1 {:?}",
        u2,
        u1
    );
    // Both are accessed inside Set.
    let set_f = m.func_by_name("Set").unwrap();
    assert!(u1.funcs.contains(&set_f));
    assert!(u2.funcs.contains(&set_f));
}

#[test]
fn listing1_set_arg_node_maps_to_both_instances() {
    let (m, _) = listing1();
    let dsa = ModuleDsa::analyze(&m);
    let set_f = m.func_by_name("Set").unwrap();
    let fd = dsa.func(set_f);
    let argn = fd.arg_cells[0].unwrap().node;
    let ids = dsa.instances_of_node(set_f, argn);
    assert_eq!(ids.len(), 2, "Set's pointer arg is context-dependent");
}

#[test]
fn local_helper_allocation_is_owned_locally() {
    // A helper with a scratch buffer that never escapes: the instance
    // belongs to the helper, not to main.
    let mut m = Module::new("t");
    let helper = {
        let mut b = FunctionBuilder::new("helper", vec![], Type::I64);
        let buf = b.alloc(b.iconst(256), Type::I64);
        b.store(buf, b.iconst(7), Type::I64);
        let v = b.load(buf, Type::I64);
        b.free(buf);
        b.ret(v);
        m.add_function(b.finish())
    };
    let main_f = {
        let mut b = FunctionBuilder::new("main", vec![], Type::Void);
        b.call(helper, vec![]);
        b.call(helper, vec![]);
        b.ret_void();
        m.add_function(b.finish())
    };
    let dsa = ModuleDsa::analyze(&m);
    assert_eq!(dsa.instances.len(), 1);
    assert_eq!(dsa.instances[0].owner, helper);
    assert_ne!(dsa.instances[0].owner, main_f);
}

#[test]
fn recursive_list_builder_flags_recursive_instance() {
    let mut m = Module::new("t");
    let node_ty = m.types.add_struct("Node", vec![Type::I64, Type::Ptr]);
    // fn build(n: i64) -> ptr  (recursive list builder)
    let build = m.add_function(cards_ir::Function::new("build", vec![Type::I64], Type::Ptr));
    {
        let mut b = FunctionBuilder::new("build", vec![Type::I64], Type::Ptr);
        let done = b.new_block();
        let rec = b.new_block();
        let c = b.cmp(cards_ir::CmpOp::Sle, b.arg(0), b.iconst(0));
        b.cond_br(c, done, rec);
        b.switch_to(done);
        b.ret(Value::Null);
        b.switch_to(rec);
        let node = b.alloc(b.iconst(16), Type::Struct(node_ty));
        b.store(node, b.arg(0), Type::I64);
        let nm1 = b.sub(b.arg(0), b.iconst(1));
        let tail = b.call(build, vec![nm1]);
        let nf = b.gep_field(node, Type::Struct(node_ty), 1);
        b.store(nf, tail, Type::Ptr);
        b.ret(node);
        *m.func_mut(build) = b.finish();
    }
    let _main = {
        let mut b = FunctionBuilder::new("main", vec![], Type::Void);
        let head = b.call(build, vec![b.iconst(100)]);
        let _v = b.load(head, Type::I64);
        b.ret_void();
        m.add_function(b.finish())
    };
    assert!(cards_ir::verify_module(&m).is_empty());
    let dsa = ModuleDsa::analyze(&m);
    assert_eq!(dsa.instances.len(), 1, "{:?}", dsa.instances);
    let inst = &dsa.instances[0];
    assert!(inst.recursive, "list must be flagged recursive");
    assert_eq!(inst.elem_ty, Some(Type::Struct(node_ty)));
}

#[test]
fn two_lists_from_same_builder_are_distinct() {
    // Context sensitivity on recursive structures: two lists built by
    // the same function are distinct instances.
    let mut m = Module::new("t");
    let node_ty = m.types.add_struct("Node", vec![Type::I64, Type::Ptr]);
    let build = {
        // iterative builder: head = null; loop { n = alloc; n.next = head; head = n }
        let mut b = FunctionBuilder::new("build", vec![Type::I64], Type::Ptr);
        let slot = b.alloca(Type::Ptr);
        b.store(slot, Value::Null, Type::Ptr);
        let z = b.iconst(0);
        let one = b.iconst(1);
        b.counted_loop(z, b.arg(0), one, |b, i| {
            let n = b.alloc(b.iconst(16), Type::Struct(node_ty));
            b.store(n, i, Type::I64);
            let head = b.load(slot, Type::Ptr);
            let nf = b.gep_field(n, Type::Struct(node_ty), 1);
            b.store(nf, head, Type::Ptr);
            b.store(slot, n, Type::Ptr);
        });
        let out = b.load(slot, Type::Ptr);
        b.ret(out);
        m.add_function(b.finish())
    };
    let main_f = {
        let mut b = FunctionBuilder::new("main", vec![], Type::Void);
        let l1 = b.call(build, vec![b.iconst(10)]);
        let l2 = b.call(build, vec![b.iconst(20)]);
        let _ = b.load(l1, Type::I64);
        let _ = b.load(l2, Type::I64);
        b.ret_void();
        m.add_function(b.finish())
    };
    let dsa = ModuleDsa::analyze(&m);
    assert_eq!(dsa.instances.len(), 2);
    assert!(dsa.instances.iter().all(|i| i.recursive));
    assert!(dsa.instances.iter().all(|i| i.owner == main_f));
}

#[test]
fn aliased_arguments_merge_in_callee_binding() {
    // f(p, p): callee's two arg nodes must unify in the caller.
    let mut m = Module::new("t");
    let callee = {
        let mut b = FunctionBuilder::new("both", vec![Type::Ptr, Type::Ptr], Type::Void);
        b.store(b.arg(0), b.iconst(1), Type::I64);
        b.store(b.arg(1), b.iconst(2), Type::I64);
        b.ret_void();
        m.add_function(b.finish())
    };
    let main_f = {
        let mut b = FunctionBuilder::new("main", vec![], Type::Void);
        let p = b.alloc(b.iconst(8), Type::I64);
        b.call(callee, vec![p, p]);
        b.ret_void();
        m.add_function(b.finish())
    };
    let dsa = ModuleDsa::analyze(&m);
    // only one instance (one alloc, both args alias it)
    assert_eq!(dsa.instances.len(), 1);
    assert_eq!(dsa.instances[0].owner, main_f);
    // and the callee's arg nodes both map to that instance
    let fd = dsa.func(callee);
    let n0 = fd.arg_cells[0].unwrap().node;
    let n1 = fd.arg_cells[1].unwrap().node;
    assert_eq!(dsa.instances_of_node(callee, n0), &[0]);
    assert_eq!(dsa.instances_of_node(callee, n1), &[0]);
}

#[test]
fn mutual_recursion_converges() {
    // even/odd mutual recursion passing a buffer down.
    let mut m = Module::new("t");
    let even = m.add_function(cards_ir::Function::new(
        "even",
        vec![Type::Ptr, Type::I64],
        Type::Void,
    ));
    let odd = m.add_function(cards_ir::Function::new(
        "odd",
        vec![Type::Ptr, Type::I64],
        Type::Void,
    ));
    {
        let mut b = FunctionBuilder::new("even", vec![Type::Ptr, Type::I64], Type::Void);
        let stop = b.new_block();
        let go = b.new_block();
        let c = b.cmp(cards_ir::CmpOp::Sle, b.arg(1), b.iconst(0));
        b.cond_br(c, stop, go);
        b.switch_to(stop);
        b.ret_void();
        b.switch_to(go);
        b.store(b.arg(0), b.arg(1), Type::I64);
        let nm1 = b.sub(b.arg(1), b.iconst(1));
        b.call(odd, vec![b.arg(0), nm1]);
        b.ret_void();
        *m.func_mut(even) = b.finish();
    }
    {
        let mut b = FunctionBuilder::new("odd", vec![Type::Ptr, Type::I64], Type::Void);
        let stop = b.new_block();
        let go = b.new_block();
        let c = b.cmp(cards_ir::CmpOp::Sle, b.arg(1), b.iconst(0));
        b.cond_br(c, stop, go);
        b.switch_to(stop);
        b.ret_void();
        b.switch_to(go);
        let nm1 = b.sub(b.arg(1), b.iconst(1));
        b.call(even, vec![b.arg(0), nm1]);
        b.ret_void();
        *m.func_mut(odd) = b.finish();
    }
    let main_f = {
        let mut b = FunctionBuilder::new("main", vec![], Type::Void);
        let p = b.alloc(b.iconst(64), Type::I64);
        b.call(even, vec![p, b.iconst(10)]);
        b.ret_void();
        m.add_function(b.finish())
    };
    assert!(cards_ir::verify_module(&m).is_empty());
    let dsa = ModuleDsa::analyze(&m);
    assert_eq!(dsa.instances.len(), 1);
    assert_eq!(dsa.instances[0].owner, main_f);
    // both even and odd see the instance
    let u = &dsa.usage[0];
    assert!(u.funcs.contains(&even));
    // `odd` only forwards the pointer (no access), so only `even` counts
    assert!(u.access_insts >= 1);
}
