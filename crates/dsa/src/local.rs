//! Per-function (local) DSA: builds a points-to graph from one function's
//! instructions, flow-insensitively with unification.
//!
//! Array indexing folds to element 0 (as in Lattner-Adve DSA), so an array
//! data structure is one node regardless of index expressions, while struct
//! fields keep distinct edges (field sensitivity). Interior pointers with
//! statically-unknown offsets collapse their node.

use std::collections::HashMap;

use cards_ir::{
    AccessKind, CastOp, FuncId, Function, GepIdx, GlobalId, Inst, InstId, Module, Type, Value,
};

use crate::graph::{AllocSite, Cell, Graph, NodeFlags, NodeId, Offset};

/// A recorded memory access (for guard insertion and usage metrics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessRecord {
    /// The load/store instruction.
    pub inst: InstId,
    /// Node its pointer operand targets.
    pub node: NodeId,
    /// Read or write.
    pub kind: AccessKind,
    /// Bytes accessed.
    pub bytes: u64,
}

/// Result of local (and later, bottom-up-augmented) DSA for one function.
#[derive(Clone, Debug)]
pub struct FunctionDsa {
    /// The function analyzed.
    pub func: FuncId,
    /// The points-to graph.
    pub graph: Graph,
    /// Cells of pointer-carrying SSA values.
    pub cells: HashMap<Value, Cell>,
    /// Cell per pointer-typed parameter (index-aligned with params).
    pub arg_cells: Vec<Option<Cell>>,
    /// Cell of the returned pointer, if the function returns one.
    pub ret_cell: Option<Cell>,
    /// Storage node per referenced global.
    pub global_nodes: HashMap<GlobalId, NodeId>,
    /// Memory accesses with their target nodes.
    pub accesses: Vec<AccessRecord>,
    /// Call sites: `(inst, callee)` for direct calls (indirect calls are
    /// expanded to all candidates by the inter-procedural phase).
    pub calls: Vec<(InstId, FuncId)>,
}

impl FunctionDsa {
    /// Run the local analysis for function `fid` of `module`.
    pub fn analyze(module: &Module, fid: FuncId) -> FunctionDsa {
        let f = module.func(fid);
        let mut a = Analyzer {
            module,
            fid,
            graph: Graph::new(),
            cells: HashMap::new(),
            arg_cells: vec![None; f.params.len()],
            ret_cell: None,
            global_nodes: HashMap::new(),
            accesses: Vec::new(),
            calls: Vec::new(),
        };
        a.run(f);
        a.finish()
    }

    /// Whether `node` escapes this function (visible to callers or other
    /// functions): returned, reachable from arguments, stored in a global,
    /// or of unknown origin.
    pub fn escapes(&self, node: NodeId) -> bool {
        self.graph.node(node).flags.intersects(
            NodeFlags::RETURNED | NodeFlags::ARG | NodeFlags::GLOBAL_ESCAPE | NodeFlags::EXTERNAL,
        )
    }

    /// Root nodes carrying heap allocation sites.
    pub fn heap_nodes(&self) -> Vec<NodeId> {
        self.graph
            .roots()
            .filter(|&n| !self.graph.node(n).alloc_sites.is_empty())
            .collect()
    }

    /// Cell of a value, if it carries one (resolve node via `graph.find`).
    pub fn cell_of(&self, v: Value) -> Option<Cell> {
        self.cells.get(&v).map(|c| Cell {
            node: self.graph.find(c.node),
            offset: c.offset,
        })
    }
}

struct Analyzer<'m> {
    module: &'m Module,
    fid: FuncId,
    graph: Graph,
    cells: HashMap<Value, Cell>,
    arg_cells: Vec<Option<Cell>>,
    ret_cell: Option<Cell>,
    global_nodes: HashMap<GlobalId, NodeId>,
    accesses: Vec<AccessRecord>,
    calls: Vec<(InstId, FuncId)>,
}

impl<'m> Analyzer<'m> {
    fn finish(mut self) -> FunctionDsa {
        self.propagate_escape_flags();
        FunctionDsa {
            func: self.fid,
            graph: self.graph,
            cells: self.cells,
            arg_cells: self.arg_cells,
            ret_cell: self.ret_cell,
            global_nodes: self.global_nodes,
            accesses: self.accesses,
            calls: self.calls,
        }
    }

    /// Mark everything reachable from args / return / globals with the
    /// corresponding escape flag.
    fn propagate_escape_flags(&mut self) {
        let mark = |g: &mut Graph, starts: Vec<NodeId>, flag: NodeFlags| {
            for n in g.reachable(starts) {
                g.add_flags(n, flag);
            }
        };
        let args: Vec<NodeId> = self.arg_cells.iter().flatten().map(|c| c.node).collect();
        mark(&mut self.graph, args, NodeFlags::ARG);
        if let Some(rc) = self.ret_cell {
            mark(&mut self.graph, vec![rc.node], NodeFlags::RETURNED);
        }
        let globals: Vec<NodeId> = self.global_nodes.values().copied().collect();
        // The global storage itself is GLOBAL; its contents escape.
        let mut content_roots = Vec::new();
        for g in globals {
            for &t in self.graph.node(g).edges.values() {
                content_roots.push(t);
            }
        }
        mark(&mut self.graph, content_roots, NodeFlags::GLOBAL_ESCAPE);
    }

    /// Get (or create) the cell of a value.
    fn cell(&mut self, v: Value) -> Cell {
        if let Some(&c) = self.cells.get(&v) {
            return c;
        }
        let c = match v {
            Value::Arg(i) => {
                let n = self.graph.new_node(NodeFlags::ARG);
                let c = Cell::at(n);
                if (i as usize) < self.arg_cells.len() {
                    self.arg_cells[i as usize] = Some(c);
                }
                c
            }
            Value::Global(g) => {
                let n = self.global_node(g);
                Cell::at(n)
            }
            Value::Func(_) => Cell::at(self.graph.new_node(NodeFlags::EXTERNAL)),
            Value::Null | Value::Undef | Value::ConstInt(_) | Value::ConstFloat(_) => {
                // Constant "pointers" get a throwaway node so unification
                // with them is harmless.
                Cell::at(self.graph.new_node(NodeFlags::empty()))
            }
            Value::Inst(_) => Cell::at(self.graph.new_node(NodeFlags::empty())),
        };
        self.cells.insert(v, c);
        c
    }

    fn global_node(&mut self, g: GlobalId) -> NodeId {
        if let Some(&n) = self.global_nodes.get(&g) {
            return n;
        }
        let n = self.graph.new_node(NodeFlags::GLOBAL);
        self.graph.node_mut(n).globals.insert(g);
        self.graph
            .node_mut(n)
            .tys
            .insert(self.module.globals[g.0 as usize].ty);
        self.global_nodes.insert(g, n);
        n
    }

    /// Unify the cells of two values (offset mismatch degrades to Unknown).
    fn unify_values(&mut self, a: Value, b: Value) {
        let ca = self.cell(a);
        let cb = self.cell(b);
        self.graph.unify(ca.node, cb.node);
        if ca.offset != cb.offset {
            // Interior-pointer merge at differing offsets: stop tracking.
            let node = self.graph.find(ca.node);
            self.graph.collapse(node);
        }
    }

    fn run(&mut self, f: &Function) {
        for (_b, iid, inst) in f.iter_insts() {
            self.visit(f, iid, inst);
        }
    }

    fn visit(&mut self, f: &Function, iid: InstId, inst: &Inst) {
        let me = Value::Inst(iid);
        match inst {
            Inst::Alloc { ty_hint, .. } => {
                let n = self.graph.new_node(NodeFlags::HEAP);
                self.graph.node_mut(n).alloc_sites.insert(AllocSite {
                    func: self.fid,
                    inst: iid,
                });
                self.graph.node_mut(n).tys.insert(*ty_hint);
                self.overwrite_cell(me, Cell::at(n));
            }
            Inst::AllocStack { ty } => {
                let n = self.graph.new_node(NodeFlags::STACK);
                self.graph.node_mut(n).tys.insert(*ty);
                self.overwrite_cell(me, Cell::at(n));
            }
            Inst::Gep {
                base,
                pointee,
                indices,
            } => {
                let bc = self.cell(*base);
                let disp = self.gep_displacement(*pointee, indices);
                let cell = Cell {
                    node: bc.node,
                    offset: match disp {
                        Some(d) => bc.offset.add(d),
                        None => Offset::Unknown,
                    },
                };
                self.overwrite_cell(me, cell);
                // record the pointee type on the node (type recovery)
                let node = self.graph.find(bc.node);
                self.graph.node_mut(node).tys.insert(*pointee);
            }
            Inst::Load { ptr, ty } => {
                let pc = self.cell(*ptr);
                self.accesses.push(AccessRecord {
                    inst: iid,
                    node: self.graph.find(pc.node),
                    kind: AccessKind::Read,
                    bytes: self.module.types.size_of(*ty),
                });
                if *ty == Type::Ptr {
                    let target = self.graph.field_target(pc);
                    self.overwrite_cell(me, Cell::at(target));
                }
            }
            Inst::Store { ptr, val, ty } => {
                let pc = self.cell(*ptr);
                self.accesses.push(AccessRecord {
                    inst: iid,
                    node: self.graph.find(pc.node),
                    kind: AccessKind::Write,
                    bytes: self.module.types.size_of(*ty),
                });
                if *ty == Type::Ptr {
                    let target = self.graph.field_target(pc);
                    let vc = self.cell(*val);
                    self.graph.unify(target, vc.node);
                    if vc.offset == Offset::Unknown {
                        let n = self.graph.find(target);
                        self.graph.collapse(n);
                    }
                }
            }
            Inst::Bin { lhs, rhs, ty, .. } if *ty == Type::I64 => {
                // Pointer arithmetic through integers: propagate with an
                // unknown offset.
                for op in [*lhs, *rhs] {
                    if let Some(&c) = self.cells.get(&op) {
                        self.overwrite_cell(
                            me,
                            Cell {
                                node: c.node,
                                offset: Offset::Unknown,
                            },
                        );
                        break;
                    }
                }
            }
            Inst::Cast { op, val, .. } => match op {
                CastOp::PtrCast | CastOp::PtrToInt => {
                    let c = self.cell(*val);
                    self.overwrite_cell(me, c);
                }
                CastOp::IntToPtr => {
                    if let Some(&c) = self.cells.get(val) {
                        self.overwrite_cell(me, c);
                    } else {
                        let n = self.graph.new_node(NodeFlags::EXTERNAL);
                        self.overwrite_cell(me, Cell::at(n));
                    }
                }
                _ => {}
            },
            Inst::Select {
                then_v, else_v, ty, ..
            } if *ty == Type::Ptr => {
                let c = self.cell(*then_v);
                self.overwrite_cell(me, c);
                self.unify_values(me, *else_v);
            }
            Inst::Phi { ty, incoming } if *ty == Type::Ptr => {
                let mut iter = incoming.iter();
                if let Some(&(_, first)) = iter.next() {
                    let c = self.cell(first);
                    self.overwrite_cell(me, c);
                    for &(_, v) in iter {
                        self.unify_values(me, v);
                    }
                }
            }
            Inst::Call { callee, args } => {
                self.calls.push((iid, *callee));
                for &a in args {
                    if self.is_pointerish(f, a) {
                        let c = self.cell(a);
                        self.graph.add_flags(c.node, NodeFlags::PASSED);
                    }
                }
                if self.module.func(*callee).ret == Type::Ptr {
                    let n = self.graph.new_node(NodeFlags::empty());
                    self.overwrite_cell(me, Cell::at(n));
                }
            }
            Inst::CallIndirect { args, ret, .. } => {
                // Conservative: indirect callees resolved inter-procedurally;
                // all pointer args escape.
                for &a in args {
                    if self.is_pointerish(f, a) {
                        let c = self.cell(a);
                        self.graph
                            .add_flags(c.node, NodeFlags::PASSED | NodeFlags::EXTERNAL);
                    }
                }
                if *ret == Type::Ptr {
                    let n = self.graph.new_node(NodeFlags::EXTERNAL);
                    self.overwrite_cell(me, Cell::at(n));
                }
            }
            Inst::Ret { val: Some(v) } if self.is_pointerish(f, *v) => {
                let c = self.cell(*v);
                match self.ret_cell {
                    Some(rc) => {
                        self.graph.unify(rc.node, c.node);
                    }
                    None => self.ret_cell = Some(c),
                }
            }
            _ => {}
        }
    }

    fn overwrite_cell(&mut self, v: Value, c: Cell) {
        if let Some(&old) = self.cells.get(&v) {
            // A placeholder existed (forward reference through a phi);
            // merge it with the real cell.
            self.graph.unify(old.node, c.node);
        }
        self.cells.insert(v, c);
    }

    /// Whether a value may carry a pointer (typed Ptr, or an int we have a
    /// cell for).
    fn is_pointerish(&self, f: &Function, v: Value) -> bool {
        match v {
            Value::Inst(i) => {
                matches!(cards_ir::result_type(self.module, f.inst(i)), Type::Ptr)
                    || self.cells.contains_key(&v)
            }
            Value::Arg(i) => f.params.get(i as usize) == Some(&Type::Ptr),
            Value::Global(_) | Value::Func(_) | Value::Null => true,
            _ => false,
        }
    }

    fn gep_displacement(&self, pointee: Type, indices: &[GepIdx]) -> Option<u64> {
        let types = &self.module.types;
        let mut disp = 0u64;
        let mut cur = pointee;
        for (i, idx) in indices.iter().enumerate() {
            match idx {
                // Array indexing folds to element 0 (DSA array folding);
                // the *type* still advances for nested aggregates.
                GepIdx::Index(_) => {
                    if i > 0 {
                        if let Type::Array(a) = cur {
                            cur = types.array_ty(a).elem;
                        }
                    }
                }
                GepIdx::Field(k) => match cur {
                    Type::Struct(sid) => {
                        disp += types.field_offset(sid, *k);
                        cur = types.struct_ty(sid).fields[*k as usize];
                    }
                    _ => return None, // ill-typed gep: give up on offsets
                },
            }
        }
        Some(disp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cards_ir::{FunctionBuilder, Module};

    /// Two distinct local allocations must be distinct nodes.
    #[test]
    fn disjoint_allocs_get_disjoint_nodes() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", vec![], cards_ir::Type::Void);
        let p = b.alloc(b.iconst(64), Type::I64);
        let q = b.alloc(b.iconst(64), Type::I64);
        b.store(p, b.iconst(1), Type::I64);
        b.store(q, b.iconst(2), Type::I64);
        b.ret_void();
        let fid = m.add_function(b.finish());
        let dsa = FunctionDsa::analyze(&m, fid);
        let heap = dsa.heap_nodes();
        assert_eq!(heap.len(), 2);
        assert_ne!(dsa.graph.find(heap[0]), dsa.graph.find(heap[1]));
        assert!(!dsa.escapes(heap[0]));
        assert_eq!(dsa.accesses.len(), 2);
    }

    /// Storing one pointer into a phi/select with another merges them.
    #[test]
    fn phi_unifies_pointers() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("f", vec![Type::I1], Type::Ptr);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.cond_br(b.arg(0), t, e);
        b.switch_to(t);
        let p = b.alloc(b.iconst(8), Type::I64);
        b.br(j);
        b.switch_to(e);
        let q = b.alloc(b.iconst(8), Type::I64);
        b.br(j);
        b.switch_to(j);
        let phi = b.phi(Type::Ptr, vec![(t, p), (e, q)]);
        b.ret(phi);
        let fid = m.add_function(b.finish());
        let dsa = FunctionDsa::analyze(&m, fid);
        let heap = dsa.heap_nodes();
        assert_eq!(heap.len(), 1, "phi must unify the two allocs");
        assert!(dsa.escapes(heap[0]), "returned pointer escapes");
        assert_eq!(dsa.graph.node(heap[0]).alloc_sites.len(), 2);
    }

    /// Statically distinct linked nodes stay distinct (DSA links, it does
    /// not unify through edges); a loop-built list aliases its nodes and
    /// becomes a recursive class.
    #[test]
    fn linked_nodes_distinct_until_aliased() {
        let mut m = Module::new("t");
        let node_ty = m.types.add_struct("Node", vec![Type::I64, Type::Ptr]);
        // Two nodes, n1.next = n2: two classes joined by an edge.
        let fid = {
            let mut b = FunctionBuilder::new("pair", vec![], Type::Ptr);
            let n1 = b.alloc(b.iconst(16), Type::Struct(node_ty));
            let n2 = b.alloc(b.iconst(16), Type::Struct(node_ty));
            let nf = b.gep_field(n1, Type::Struct(node_ty), 1);
            b.store(nf, n2, Type::Ptr);
            b.ret(n1);
            m.add_function(b.finish())
        };
        let dsa = FunctionDsa::analyze(&m, fid);
        assert_eq!(dsa.heap_nodes().len(), 2);
        assert!(dsa.heap_nodes().iter().all(|&n| !dsa.graph.is_recursive(n)));

        // Loop-built list: nodes alias through the phi'd head -> recursive.
        let fid2 = {
            let mut b = FunctionBuilder::new("list", vec![], Type::Ptr);
            let slot = b.alloca(Type::Ptr);
            b.store(slot, Value::Null, Type::Ptr);
            let z = b.iconst(0);
            let n = b.iconst(100);
            let one = b.iconst(1);
            b.counted_loop(z, n, one, |b, i| {
                let node = b.alloc(b.iconst(16), Type::Struct(node_ty));
                b.store(node, i, Type::I64);
                let head = b.load(slot, Type::Ptr);
                let nf = b.gep_field(node, Type::Struct(node_ty), 1);
                b.store(nf, head, Type::Ptr);
                b.store(slot, node, Type::Ptr);
            });
            let out = b.load(slot, Type::Ptr);
            b.ret(out);
            m.add_function(b.finish())
        };
        let dsa2 = FunctionDsa::analyze(&m, fid2);
        let heap2 = dsa2.heap_nodes();
        assert_eq!(heap2.len(), 1, "loop iterations alias into one class");
        assert!(dsa2.graph.is_recursive(heap2[0]));
    }

    /// Struct fields keep separate edges (field sensitivity): two pointer
    /// fields of a struct point to different nodes.
    #[test]
    fn field_sensitivity_keeps_edges_apart() {
        let mut m = Module::new("t");
        let pair = m.types.add_struct("Pair", vec![Type::Ptr, Type::Ptr]);
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        let s = b.alloca(Type::Struct(pair));
        let a = b.alloc(b.iconst(8), Type::I64);
        let c = b.alloc(b.iconst(8), Type::I64);
        let f0 = b.gep_field(s, Type::Struct(pair), 0);
        let f1 = b.gep_field(s, Type::Struct(pair), 1);
        b.store(f0, a, Type::Ptr);
        b.store(f1, c, Type::Ptr);
        b.ret_void();
        let fid = m.add_function(b.finish());
        let dsa = FunctionDsa::analyze(&m, fid);
        let heap = dsa.heap_nodes();
        assert_eq!(heap.len(), 2, "pointer fields at offsets 0/8 stay apart");
    }

    /// Array indexing folds: ds[i] accesses stay on the array's node.
    #[test]
    fn array_indexing_folds_to_one_node() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        let arr = b.alloc(b.iconst(800), Type::I64);
        let z = b.iconst(0);
        let n = b.iconst(100);
        let one = b.iconst(1);
        b.counted_loop(z, n, one, |b, i| {
            let p = b.gep_index(arr, Type::I64, i);
            b.store(p, i, Type::I64);
        });
        b.ret_void();
        let fid = m.add_function(b.finish());
        let dsa = FunctionDsa::analyze(&m, fid);
        let heap = dsa.heap_nodes();
        assert_eq!(heap.len(), 1);
        assert!(
            !dsa.graph.node(heap[0]).collapsed,
            "folding is not collapse"
        );
        // 100 stores map to the single array node
        let arr_node = dsa.graph.find(heap[0]);
        assert!(dsa
            .accesses
            .iter()
            .all(|a| dsa.graph.find(a.node) == arr_node));
    }

    /// Globals: a heap pointer stored to a global escapes.
    #[test]
    fn global_store_escapes() {
        let mut m = Module::new("t");
        let g = m.add_global("ds1", Type::Ptr, None);
        let mut b = FunctionBuilder::new("main", vec![], Type::Void);
        let p = b.alloc(b.iconst(64), Type::I32);
        b.store(Value::Global(g), p, Type::Ptr);
        b.ret_void();
        let fid = m.add_function(b.finish());
        let dsa = FunctionDsa::analyze(&m, fid);
        let heap = dsa.heap_nodes();
        assert_eq!(heap.len(), 1);
        assert!(dsa.escapes(heap[0]));
        assert!(dsa
            .graph
            .node(heap[0])
            .flags
            .contains(NodeFlags::GLOBAL_ESCAPE));
    }

    /// Pointers reachable from arguments are flagged ARG.
    #[test]
    fn arg_reachability_flags() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("f", vec![Type::Ptr], Type::Void);
        let inner = b.load(b.arg(0), Type::Ptr);
        b.store(inner, b.iconst(1), Type::I64);
        b.ret_void();
        let fid = m.add_function(b.finish());
        let dsa = FunctionDsa::analyze(&m, fid);
        let c = dsa.cell_of(Value::Inst(cards_ir::InstId(0))).unwrap();
        assert!(dsa.graph.node(c.node).flags.contains(NodeFlags::ARG));
    }

    /// ptrtoint/arithmetic/inttoptr keeps the node but loses the offset.
    #[test]
    fn int_pointer_laundering_collapses_offsets() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        let p = b.alloc(b.iconst(64), Type::I64);
        let i = b.cast(CastOp::PtrToInt, p, Type::I64);
        let j = b.add(i, b.iconst(24));
        let q = b.cast(CastOp::IntToPtr, j, Type::Ptr);
        b.store(q, b.iconst(0), Type::I64);
        b.ret_void();
        let fid = m.add_function(b.finish());
        let dsa = FunctionDsa::analyze(&m, fid);
        let heap = dsa.heap_nodes();
        assert_eq!(heap.len(), 1, "laundered pointer still aliases the alloc");
        let qc = dsa.cell_of(Value::Inst(cards_ir::InstId(3))).unwrap();
        assert_eq!(dsa.graph.find(qc.node), dsa.graph.find(heap[0]));
        assert_eq!(qc.offset, Offset::Unknown);
    }
}
