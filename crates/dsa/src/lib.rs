//! # cards-dsa
//!
//! Data Structure Analysis for the CaRDS reproduction: a context-sensitive,
//! inter-procedural, unification-based points-to analysis over `cards-ir`,
//! in the style of Lattner-Adve DSA as refined by SeaDSA.
//!
//! The headline capability (paper §4.1, Figure 2): given a program where
//! one helper allocates for several callers, DSA's per-call-site cloning
//! distinguishes the resulting *data structure instances*, so CaRDS can give
//! each its own remoting and prefetching policy.
//!
//! Pipeline:
//! 1. [`local::FunctionDsa::analyze`] — per-function graphs (field-sensitive
//!    edges, array folding, escape flags).
//! 2. [`interproc::ModuleDsa::analyze`] — bottom-up over the call-graph SCC
//!    condensation with per-call-site summary cloning; extracts
//!    [`DsInstance`]s and per-instance [`DsUsage`] metrics (functions,
//!    loops, reach depth) that feed the remoting policies.

pub mod graph;
pub mod interproc;
pub mod local;

pub use graph::{AllocSite, Cell, Graph, NodeData, NodeFlags, NodeId, Offset};
pub use interproc::{CallBinding, DsInstance, DsUsage, ModuleDsa};
pub use local::{AccessRecord, FunctionDsa};

#[cfg(test)]
mod tests;
