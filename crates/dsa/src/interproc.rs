//! Inter-procedural, context-sensitive DSA (the SeaDSA-style bottom-up
//! phase), disjoint data-structure extraction, and per-DS usage metrics.
//!
//! Bottom-up over the call-graph SCC condensation: at every call site the
//! callee's *summary subgraph* (nodes reachable from its pointer parameters,
//! return value, and globals) is **cloned** into the caller and unified with
//! the actual arguments. Cloning is what gives context sensitivity: two
//! calls to the same allocating helper produce two distinct heap nodes in
//! the caller — exactly how CaRDS distinguishes `ds1`/`ds2` in Listing 1.
//!
//! Recursive SCCs are iterated to a fixpoint; re-applied call sites unify
//! their new clone with the previous one, so repeated application converges
//! instead of duplicating nodes.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use cards_ir::analysis::{CallGraph, CallGraphSccs, Cfg, DomTree, LoopForest};
use cards_ir::{FuncId, InstId, Module, Type, Value};

use crate::graph::{AllocSite, Cell, NodeFlags, NodeId};
use crate::local::FunctionDsa;

/// Node correspondence for one call site: callee summary node → caller node.
#[derive(Clone, Debug, Default)]
pub struct CallBinding {
    /// Map keyed by callee node (resolve both sides with `find` at query
    /// time; keys may have merged since recording).
    pub node_map: BTreeMap<NodeId, NodeId>,
}

/// One compiler-identified disjoint data structure *instance*.
#[derive(Clone, Debug)]
pub struct DsInstance {
    /// Dense instance id (== index in `ModuleDsa::instances`).
    pub id: u32,
    /// Function whose graph owns the instance (where `ds_init` will go).
    pub owner: FuncId,
    /// The owning node in `owner`'s graph.
    pub node: NodeId,
    /// All heap allocation sites folded into the instance.
    pub alloc_sites: BTreeSet<AllocSite>,
    /// Whether the structure is self-referential (linked/recursive).
    pub recursive: bool,
    /// Recovered element type, if any.
    pub elem_ty: Option<Type>,
    /// Diagnostic name (named after a global when the instance is stored
    /// into one, as `ds1`/`ds2` in Listing 1).
    pub name: String,
}

/// Usage metrics per instance (feeds the Max Reach / Max Use policies).
#[derive(Clone, Debug, Default)]
pub struct DsUsage {
    /// Functions whose code may access the instance.
    pub funcs: BTreeSet<FuncId>,
    /// Distinct loops containing at least one access.
    pub loops: u32,
    /// Static count of access instructions.
    pub access_insts: u64,
    /// Max caller/callee chain length among accessing functions
    /// (Max Reach policy input).
    pub reach_depth: u32,
}

impl DsUsage {
    /// Paper Eq. 1: `#loops + #functions`.
    pub fn use_score(&self) -> u32 {
        self.loops + self.funcs.len() as u32
    }
}

/// Whole-module DSA result.
pub struct ModuleDsa {
    /// Per-function graphs (post bottom-up), indexed by `FuncId`.
    pub funcs: Vec<FunctionDsa>,
    /// Per call site: callee-node → caller-node correspondence.
    pub bindings: HashMap<(FuncId, InstId), CallBinding>,
    /// Disjoint data-structure instances.
    pub instances: Vec<DsInstance>,
    /// Per function: root node → instance ids it may represent.
    pub node_instances: Vec<HashMap<NodeId, Vec<u32>>>,
    /// Usage metrics per instance (index-aligned with `instances`).
    pub usage: Vec<DsUsage>,
    /// Functions with no callers (program entry points).
    pub entries: Vec<FuncId>,
}

impl ModuleDsa {
    /// Run the full analysis on `module`.
    pub fn analyze(module: &Module) -> ModuleDsa {
        let cg = CallGraph::compute(module);
        let sccs = CallGraphSccs::compute(&cg);
        let mut funcs: Vec<FunctionDsa> = module
            .funcs()
            .map(|(fid, _)| FunctionDsa::analyze(module, fid))
            .collect();
        let mut bindings: HashMap<(FuncId, InstId), CallBinding> = HashMap::new();

        // Tarjan emits SCCs callees-first, which is the bottom-up order.
        for scc in &sccs.members {
            let recursive_scc =
                scc.len() > 1 || scc.iter().any(|&f| cg.callees[f.0 as usize].contains(&f));
            let iters = if recursive_scc { 6 } else { 1 };
            for _ in 0..iters {
                let mut changed = false;
                for &f in scc {
                    changed |= apply_callsites(module, &mut funcs, &mut bindings, f);
                }
                if !changed {
                    break;
                }
            }
        }

        let entries: Vec<FuncId> = module
            .funcs()
            .map(|(fid, _)| fid)
            .filter(|&fid| cg.callers[fid.0 as usize].is_empty())
            .collect();

        let (instances, node_instances) =
            extract_instances(module, &funcs, &bindings, &cg, &entries);
        let usage = compute_usage(module, &funcs, &instances, &node_instances, &cg, &sccs);

        ModuleDsa {
            funcs,
            bindings,
            instances,
            node_instances,
            usage,
            entries,
        }
    }

    /// Graph/analysis of one function.
    pub fn func(&self, f: FuncId) -> &FunctionDsa {
        &self.funcs[f.0 as usize]
    }

    /// Instance ids that node `n` of function `f` may represent.
    pub fn instances_of_node(&self, f: FuncId, n: NodeId) -> &[u32] {
        let root = self.funcs[f.0 as usize].graph.find(n);
        self.node_instances[f.0 as usize]
            .get(&root)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }
}

/// Apply all call sites of `f`, cloning callee summaries in. Returns
/// whether the graph changed structurally (new unifications happened).
fn apply_callsites(
    module: &Module,
    funcs: &mut [FunctionDsa],
    bindings: &mut HashMap<(FuncId, InstId), CallBinding>,
    f: FuncId,
) -> bool {
    let sig_before = signature(&funcs[f.0 as usize]);
    let calls = funcs[f.0 as usize].calls.clone();
    for (site, callee) in calls {
        if callee == f {
            // Direct self-recursion: parameters unify with arguments in the
            // same graph; no cloning needed.
            unify_self_call(module, &mut funcs[f.0 as usize], site);
            continue;
        }
        // Clone the callee summary. split_at_mut to borrow both.
        let (a, b) = if callee.0 < f.0 {
            let (lo, hi) = funcs.split_at_mut(f.0 as usize);
            (&mut hi[0], &lo[callee.0 as usize])
        } else {
            let (lo, hi) = funcs.split_at_mut(callee.0 as usize);
            (&mut lo[f.0 as usize], &hi[0])
        };
        apply_one_call(module, a, b, site, bindings.entry((f, site)).or_default());
    }
    sig_before != signature(&funcs[f.0 as usize])
}

/// Structural signature used for SCC fixpoint detection.
fn signature(fd: &FunctionDsa) -> (usize, usize, usize, u64) {
    let mut classes = BTreeSet::new();
    let mut edges = 0usize;
    let mut sites = 0usize;
    let mut flags = 0u64;
    for r in fd.graph.roots() {
        classes.insert(r);
        let d = fd.graph.node(r);
        edges += d.edges.len();
        sites += d.alloc_sites.len();
        flags += d.flags.0 as u64;
    }
    (classes.len(), edges, sites, flags)
}

/// Summary roots of a callee: pointer params, return cell, global storage.
fn summary_roots(fd: &FunctionDsa) -> Vec<NodeId> {
    let mut roots: Vec<NodeId> = fd.arg_cells.iter().flatten().map(|c| c.node).collect();
    if let Some(rc) = fd.ret_cell {
        roots.push(rc.node);
    }
    roots.extend(fd.global_nodes.values().copied());
    roots
}

fn ensure_cell(fd: &mut FunctionDsa, v: Value) -> Cell {
    if let Some(&c) = fd.cells.get(&v) {
        return c;
    }
    let c = match v {
        Value::Global(g) => {
            let n = *fd
                .global_nodes
                .entry(g)
                .or_insert_with(|| fd.graph.new_node(NodeFlags::GLOBAL));
            Cell::at(n)
        }
        _ => Cell::at(fd.graph.new_node(NodeFlags::empty())),
    };
    fd.cells.insert(v, c);
    c
}

fn apply_one_call(
    module: &Module,
    caller: &mut FunctionDsa,
    callee: &FunctionDsa,
    site: InstId,
    binding: &mut CallBinding,
) {
    let roots = summary_roots(callee);
    let clone_map = caller.graph.clone_from(&callee.graph, roots);
    // Converge with any previous application of this call site.
    for (&old, &new) in &clone_map {
        if let Some(&prev) = binding.node_map.get(&old) {
            caller.graph.unify(new, prev);
        }
        binding
            .node_map
            .insert(callee.graph.find(old), caller.graph.find(new));
    }
    // Bind pointer arguments.
    let callee_fn = module.func(callee.func);
    let args: Vec<Value> = match module.func(caller.func).inst(site) {
        cards_ir::Inst::Call { args, .. } => args.clone(),
        _ => return,
    };
    for (i, &arg) in args.iter().enumerate() {
        if callee_fn.params.get(i) != Some(&Type::Ptr) {
            continue;
        }
        let Some(ac) = callee.arg_cells.get(i).copied().flatten() else {
            continue;
        };
        let Some(&cloned) = clone_map.get(&callee.graph.find(ac.node)) else {
            continue;
        };
        let caller_cell = ensure_cell(caller, arg);
        caller.graph.unify(cloned, caller_cell.node);
        if caller_cell.offset != crate::graph::Offset::Known(0) {
            let n = caller.graph.find(cloned);
            caller.graph.collapse(n);
        }
    }
    // Bind return value.
    if let Some(rc) = callee.ret_cell {
        if let Some(&cloned) = clone_map.get(&callee.graph.find(rc.node)) {
            let res_cell = ensure_cell(caller, Value::Inst(site));
            caller.graph.unify(cloned, res_cell.node);
        }
    }
    // Bind globals.
    let callee_globals: Vec<(cards_ir::GlobalId, NodeId)> =
        callee.global_nodes.iter().map(|(&g, &n)| (g, n)).collect();
    for (g, gnode) in callee_globals {
        if let Some(&cloned) = clone_map.get(&callee.graph.find(gnode)) {
            let mine = *caller
                .global_nodes
                .entry(g)
                .or_insert_with(|| caller.graph.new_node(NodeFlags::GLOBAL));
            caller.graph.unify(cloned, mine);
        }
    }
    // Pointer escape through calls whose callee stores to globals is now
    // visible: refresh escape flags on heap nodes reachable from globals.
    let mut content_roots = Vec::new();
    for &g in caller.global_nodes.values() {
        for &t in caller.graph.node(g).edges.values() {
            content_roots.push(t);
        }
    }
    for n in caller.graph.reachable(content_roots) {
        caller.graph.add_flags(n, NodeFlags::GLOBAL_ESCAPE);
    }
}

/// Direct self-recursion: unify argument cells with parameter cells.
fn unify_self_call(module: &Module, fd: &mut FunctionDsa, site: InstId) {
    let args: Vec<Value> = match module.func(fd.func).inst(site) {
        cards_ir::Inst::Call { args, .. } => args.clone(),
        _ => return,
    };
    for (i, &arg) in args.iter().enumerate() {
        if let Some(pc) = fd.arg_cells.get(i).copied().flatten() {
            let ac = ensure_cell(fd, arg);
            fd.graph.unify(pc.node, ac.node);
        }
    }
    if let Some(rc) = fd.ret_cell {
        let res = ensure_cell(fd, Value::Inst(site));
        fd.graph.unify(rc.node, res.node);
    }
}

/// Extract disjoint DS instances: heap nodes that are *complete* in some
/// function — non-escaping anywhere, or any heap node in an entry function.
fn extract_instances(
    module: &Module,
    funcs: &[FunctionDsa],
    bindings: &HashMap<(FuncId, InstId), CallBinding>,
    cg: &CallGraph,
    entries: &[FuncId],
) -> (Vec<DsInstance>, Vec<HashMap<NodeId, Vec<u32>>>) {
    let mut instances: Vec<DsInstance> = Vec::new();
    let mut node_instances: Vec<HashMap<NodeId, Vec<u32>>> = vec![HashMap::new(); funcs.len()];

    for fd in funcs {
        let fid = fd.func;
        let is_entry = entries.contains(&fid);
        for n in fd.heap_nodes() {
            let complete = is_entry || !fd.escapes(n);
            if !complete {
                continue;
            }
            let data = fd.graph.node(n);
            let id = instances.len() as u32;
            let elem_ty = pick_elem_ty(module, &data.tys);
            let name = name_for(module, fd, n, id);
            instances.push(DsInstance {
                id,
                owner: fid,
                node: fd.graph.find(n),
                alloc_sites: data.alloc_sites.clone(),
                recursive: fd.graph.is_recursive(n),
                elem_ty,
                name,
            });
            node_instances[fid.0 as usize]
                .entry(fd.graph.find(n))
                .or_default()
                .push(id);
        }
    }

    // Top-down: propagate instance ids through call-site bindings so every
    // function knows which instances each of its nodes may represent.
    let mut work: Vec<(FuncId, NodeId, u32)> = Vec::new();
    for inst in &instances {
        work.push((inst.owner, inst.node, inst.id));
    }
    let mut seen: BTreeSet<(u32, u32, u32)> = BTreeSet::new();
    while let Some((f, node, id)) = work.pop() {
        let root = funcs[f.0 as usize].graph.find(node);
        if !seen.insert((f.0, root.0, id)) {
            continue;
        }
        let slot = node_instances[f.0 as usize].entry(root).or_default();
        if !slot.contains(&id) {
            slot.push(id);
        }
        // descend into callees whose summary nodes map to this node
        for &(site, callee) in &funcs[f.0 as usize].calls {
            let _ = cg; // (call graph retained for symmetry/debugging)
            let Some(binding) = bindings.get(&(f, site)) else {
                continue;
            };
            for (&callee_n, &caller_n) in &binding.node_map {
                if funcs[f.0 as usize].graph.find(caller_n) == root {
                    work.push((callee, funcs[callee.0 as usize].graph.find(callee_n), id));
                }
            }
        }
        // Propagate through shared globals: if this node is stored behind
        // global `g` here, every function that loads `g` sees the same
        // structure — even with no call path between them. This is what
        // lets two disconnected entry points (a host-driven `setup` /
        // `request` split) agree on the instance, so the consumer's
        // accesses still get guards. Sorted iteration keeps instance-id
        // assignment deterministic.
        let mut shared: Vec<cards_ir::GlobalId> = Vec::new();
        for (&g, &gn) in &funcs[f.0 as usize].global_nodes {
            let gd = funcs[f.0 as usize]
                .graph
                .node(funcs[f.0 as usize].graph.find(gn));
            if gd
                .edges
                .values()
                .any(|&t| funcs[f.0 as usize].graph.find(t) == root)
            {
                shared.push(g);
            }
        }
        shared.sort_by_key(|g| g.0);
        for g in shared {
            for fd2 in funcs {
                if fd2.func == f {
                    continue;
                }
                let Some(&gn2) = fd2.global_nodes.get(&g) else {
                    continue;
                };
                let gd2 = fd2.graph.node(fd2.graph.find(gn2));
                let mut targets: Vec<NodeId> = gd2.edges.values().copied().collect();
                targets.sort_by_key(|n| n.0);
                for t in targets {
                    work.push((fd2.func, fd2.graph.find(t), id));
                }
            }
        }
    }

    (instances, node_instances)
}

fn pick_elem_ty(module: &Module, tys: &BTreeSet<Type>) -> Option<Type> {
    // Prefer named structs, then arrays' elements, then scalars.
    for t in tys {
        if matches!(t, Type::Struct(_)) {
            return Some(*t);
        }
    }
    for t in tys {
        if let Type::Array(a) = t {
            return Some(module.types.array_ty(*a).elem);
        }
    }
    tys.iter()
        .find(|t| t.is_scalar() && **t != Type::Ptr)
        .copied()
}

fn name_for(module: &Module, fd: &FunctionDsa, n: NodeId, id: u32) -> String {
    let root = fd.graph.find(n);
    // Named after a global it is stored into, if any.
    for (&g, &gn) in &fd.global_nodes {
        let stored: Vec<NodeId> = fd.graph.node(gn).edges.values().copied().collect();
        if stored.iter().any(|&t| fd.graph.find(t) == root) {
            return module.globals[g.0 as usize].name.clone();
        }
    }
    // Otherwise after its element type.
    let data = fd.graph.node(root);
    for t in &data.tys {
        if let Type::Struct(s) = t {
            return format!("ds{}_{}", id, module.types.struct_ty(*s).name);
        }
    }
    format!("ds{id}")
}

/// Top-down usage metrics per instance.
///
/// A function *uses* an instance if it accesses it directly or calls (maybe
/// transitively) a function that does. Loops count when they contain either
/// a direct access or a call site through which a used instance flows —
/// this is what makes `ds2` score higher than `ds1` in Listing 1: main's
/// `k`-loop contains `Set(ds2, k)`.
fn compute_usage(
    module: &Module,
    funcs: &[FunctionDsa],
    instances: &[DsInstance],
    node_instances: &[HashMap<NodeId, Vec<u32>>],
    cg: &CallGraph,
    sccs: &CallGraphSccs,
) -> Vec<DsUsage> {
    let _ = cg;
    let reach = sccs.reach_depth();
    let nf = funcs.len();
    let ni = instances.len();

    // Direct accesses: ids per function, plus the access instructions.
    let mut direct: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); nf];
    let mut access_count = vec![0u64; ni];
    for fd in funcs {
        for acc in &fd.accesses {
            let root = fd.graph.find(acc.node);
            if let Some(ids) = node_instances[fd.func.0 as usize].get(&root) {
                for &id in ids {
                    direct[fd.func.0 as usize].insert(id);
                    access_count[id as usize] += 1;
                }
            }
        }
    }

    // Call-site flows: for each call site, which instances flow into the
    // callee (nodes on the caller side that represent the instance).
    // flows[f] = Vec<(site, callee, ids)>
    let mut flows: Vec<Vec<(InstId, FuncId, BTreeSet<u32>)>> = vec![Vec::new(); nf];
    for fd in funcs {
        for &(site, callee) in &fd.calls {
            let mut ids = BTreeSet::new();
            // All instances the caller-side nodes of this binding represent.
            // (The binding was recorded during bottom-up.)
            if let Some(map) = node_instances.get(fd.func.0 as usize) {
                // Use the binding recorded for this site.
                // Note: stored separately; reconstruct from caller arg cells.
                let _ = map;
            }
            // Conservative and simple: instances of the pointer arguments.
            if let cards_ir::Inst::Call { args, .. } = module.func(fd.func).inst(site) {
                for &a in args {
                    if let Some(c) = fd.cells.get(&a) {
                        let root = fd.graph.find(c.node);
                        if let Some(v) = node_instances[fd.func.0 as usize].get(&root) {
                            ids.extend(v.iter().copied());
                        }
                    }
                }
            }
            if !ids.is_empty() {
                flows[fd.func.0 as usize].push((site, callee, ids));
            }
        }
    }

    // uses[f] = instances used by f directly or via callees (fixpoint).
    let mut uses: Vec<BTreeSet<u32>> = direct.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for f in 0..nf {
            let mut add: Vec<u32> = Vec::new();
            for (_site, callee, ids) in &flows[f] {
                for &id in ids {
                    if uses[callee.0 as usize].contains(&id) && !uses[f].contains(&id) {
                        add.push(id);
                    }
                }
            }
            if !add.is_empty() {
                uses[f].extend(add);
                changed = true;
            }
        }
    }

    let mut usage = vec![DsUsage::default(); ni];
    for (id, count) in access_count.iter().enumerate() {
        usage[id].access_insts = *count;
    }
    for f in 0..nf {
        for &id in &uses[f] {
            usage[id as usize].funcs.insert(FuncId(f as u32));
            usage[id as usize].reach_depth = usage[id as usize].reach_depth.max(reach[f]);
        }
    }

    // Loop counting: distinct (function, loop) pairs containing a direct
    // access or a flowing call site.
    for fd in funcs {
        let fid = fd.func;
        let f = module.func(fid);
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);
        let loops = LoopForest::compute(f, &cfg, &dom);
        if loops.loops.is_empty() {
            continue;
        }
        let block_of = f.inst_block_map();
        let mut per_inst_loops: HashMap<u32, BTreeSet<u32>> = HashMap::new();
        for acc in &fd.accesses {
            let root = fd.graph.find(acc.node);
            let Some(ids) = node_instances[fid.0 as usize].get(&root) else {
                continue;
            };
            if let Some(lp) = loops.loop_of(block_of[acc.inst.0 as usize]) {
                for &id in ids {
                    per_inst_loops.entry(id).or_default().insert(lp.0);
                }
            }
        }
        for (site, callee, ids) in &flows[fid.0 as usize] {
            if let Some(lp) = loops.loop_of(block_of[site.0 as usize]) {
                for &id in ids {
                    if uses[callee.0 as usize].contains(&id) {
                        per_inst_loops.entry(id).or_default().insert(lp.0);
                    }
                }
            }
        }
        for (id, lps) in per_inst_loops {
            usage[id as usize].loops += lps.len() as u32;
        }
    }
    usage
}
