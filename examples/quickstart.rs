//! Quickstart: the paper's Listing 1, end to end.
//!
//! Builds the two-data-structure example, compiles it with the CaRDS
//! pipeline (DSA → pool allocation → guards → versioning), and runs it on
//! the simulated far-memory setup under two policies — reproducing the
//! §4 narrative that localizing `ds2` (the loop-hot structure) beats
//! localizing `ds1`.
//!
//! Run with: `cargo run --release --example quickstart`

use cards_core::prelude::*;
use cards_core::workloads::listing1::{build, reference, Listing1Params};

fn main() {
    let params = Listing1Params {
        elems: 256 * 1024, // 1 MiB per array (paper: 3 GB; scaled)
        ntimes: 16,
    };
    let ws = params.working_set_bytes();
    println!("Listing 1: two arrays, {} KiB working set", ws / 1024);

    // Show what the compiler finds.
    let (module, _) = build(params);
    let compiled = compile(module, CompileOptions::cards()).expect("compile");
    println!(
        "compiler: {} disjoint data structures {:?}, {} guards inserted, {} elided, {} loops versioned",
        compiled.ds_count(),
        compiled.ds_names(),
        compiled.guard_stats.inserted,
        compiled.guard_stats.elided,
        compiled.versioned_loops,
    );

    // k = 50%: only one of the two structures can be pinned. Max Use picks
    // ds2 (written NTIMES times); Linear would pick ds1 (allocated first).
    let budget = MemoryBudget::fraction_of(ws, 0.55, 0.08);
    println!("\npolicy comparison at 55% local memory (k = 50%):");
    println!(
        "{:<28} {:>16} {:>12} {:>10}",
        "system", "cycles", "guards", "fetches"
    );
    for policy in [
        RemotingPolicy::AllRemotable,
        RemotingPolicy::Linear,
        RemotingPolicy::Random { seed: 42 },
        RemotingPolicy::MaxReach,
        RemotingPolicy::MaxUse,
    ] {
        let r =
            cards_core::run_far_memory(&move || build(params), policy, 50, budget).expect("run");
        assert_eq!(r.checksum, reference(params), "wrong result!");
        println!(
            "{:<28} {:>16} {:>12} {:>10}",
            r.system, r.cycles, r.metrics.guards, r.net.fetches
        );
    }
    println!("\n(lower cycles = better; informed policies beat all-remotable)");
}
