//! Using the far-memory runtime directly from Rust (no IR, no compiler) —
//! the AIFM-style embedding: register data structures, allocate through
//! pool handles, guard before access, and read the per-DS report.
//!
//! Run with: `cargo run --release --example native_runtime`

use cards_core::net::{NetworkModel, SimTransport};
use cards_core::runtime::{
    render_report, Access, DsSpec, FarMemRuntime, PrefetchKind, RuntimeConfig, StaticHint,
};

fn main() {
    // 256 KiB pinned + 64 KiB remotable cache over the simulated link.
    let cfg = RuntimeConfig::new(256 << 10, 64 << 10);
    let mut rt = FarMemRuntime::new(cfg, SimTransport::new(NetworkModel::default()));

    // A hot index that must stay local, and a big cold log that cannot.
    let index = rt.register_ds(
        DsSpec::simple("hot_index").with_prefetch(PrefetchKind::None),
        StaticHint::Pinned,
    );
    let log = rt.register_ds(
        DsSpec::simple("cold_log").with_prefetch(PrefetchKind::Stride),
        StaticHint::Remotable,
    );

    let (idx_ptr, _) = rt.ds_alloc(index, 128 << 10).expect("alloc index");
    let entries = 64usize << 10; // 512 KiB of log: 8x the cache
    let (log_ptr, _) = rt.ds_alloc(log, (entries * 8) as u64).expect("alloc log");

    // Append entries to the log, bumping per-bucket counters in the index.
    for i in 0..entries as u64 {
        let e = log_ptr.add(i * 8);
        rt.guard(e, Access::Write, 8).expect("guard log");
        rt.write_u64(e, i * 3).expect("write log");
        let slot = idx_ptr.add((i % 1024) * 8);
        rt.guard(slot, Access::Write, 8).expect("guard index");
        let (cur, _) = rt.read_u64(slot).expect("read index");
        rt.write_u64(slot, cur + 1).expect("write index");
    }

    // Scan the log back (stride prefetcher earns its keep here).
    let mut checksum = 0u64;
    for i in 0..entries as u64 {
        let e = log_ptr.add(i * 8);
        rt.guard(e, Access::Read, 8).expect("guard");
        let (v, _) = rt.read_u64(e).expect("read");
        checksum = checksum.wrapping_add(v);
    }
    println!("log checksum: {checksum}");
    println!("\nruntime report:\n{}", render_report(&rt));

    let idx_stats = rt.ds_stats(index).unwrap();
    let log_stats = rt.ds_stats(log).unwrap();
    println!(
        "hot index stayed local ({} misses); cold log paid {} misses but \
         prefetching covered {:.0}% of its would-be misses",
        idx_stats.misses,
        log_stats.misses,
        log_stats.prefetch_coverage() * 100.0
    );
}
