//! Taxi analytics across systems (the Figure 8 scenario).
//!
//! Runs the analytics workload under local-only, TrackFM (conservative),
//! CaRDS, and the profile-guided Mira model while varying how much local
//! memory is available.
//!
//! Run with: `cargo run --release --example analytics_pipeline`

use cards_core::prelude::*;
use cards_core::workloads::taxi::{build, reference, TaxiParams};

fn main() {
    let params = TaxiParams { trips: 20_000 };
    let ws = params.working_set_bytes();
    println!(
        "analytics: {} trips, working set {} KiB",
        params.trips,
        ws / 1024
    );
    let expect = reference(params);
    let build_fn = move || build(params);

    println!("\ncycles by system and local-memory fraction:");
    print!("{:<12}", "system");
    let fracs = [0.25f64, 0.5, 0.75, 1.0];
    for f in fracs {
        print!(" {:>16}", format!("{:.0}% local", f * 100.0));
    }
    println!();

    let systems = [
        ("local-only", System::LocalOnly),
        ("trackfm", System::TrackFm),
        (
            "cards",
            System::Cards {
                policy: RemotingPolicy::MaxReach,
                k: 75,
            },
        ),
        ("mira", System::Mira),
    ];
    for (label, sys) in systems {
        print!("{:<12}", label);
        for f in fracs {
            let budget = MemoryBudget::fraction_of(ws, f, 0.05);
            let r = run_system(&build_fn, sys, budget).expect("run");
            assert_eq!(r.checksum, expect, "{label} wrong result");
            print!(" {:>16}", r.cycles);
        }
        println!();
    }
    println!("\nExpected shape (paper Fig. 8): local-only < mira <= cards < trackfm");
    println!("with CaRDS within ~25% of Mira when memory is constrained.");
}
