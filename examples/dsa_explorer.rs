//! DSA explorer: what the compiler sees (the Figure 2 analog).
//!
//! Builds a program with several heap data structures — two arrays filled
//! through a shared helper, a loop-built linked list, and a hash-probed
//! table — then prints the data-structure instances DSA recovers, their
//! recursion flags, usage metrics (Eq. 1), and the prefetcher each one is
//! assigned.
//!
//! Run with: `cargo run --release --example dsa_explorer`

use cards_core::dsa::ModuleDsa;
use cards_core::ir::{FunctionBuilder, Intrinsic, Module, Type, Value};
use cards_core::passes::{analyze_prefetch, rank_instances, PrefetchSelection};

fn build_demo() -> Module {
    let mut m = Module::new("dsa_demo");
    let node_ty = m.types.add_struct("Node", vec![Type::I64, Type::Ptr]);

    // helper that allocates an array for its caller (context sensitivity!)
    let alloc_f = {
        let mut b = FunctionBuilder::new("alloc_array", vec![Type::I64], Type::Ptr);
        let bytes = b.mul(b.arg(0), b.iconst(8));
        let p = b.alloc(bytes, Type::I64);
        b.ret(p);
        m.add_function(b.finish())
    };

    let mut b = FunctionBuilder::new("main", vec![], Type::Void);
    let n = 1024i64;
    // two arrays via the same helper
    let arr_a = b.call(alloc_f, vec![b.iconst(n)]);
    let arr_b = b.call(alloc_f, vec![b.iconst(n)]);
    let (z, one) = (b.iconst(0), b.iconst(1));
    b.counted_loop(z, b.iconst(n), one, |b, i| {
        let pa = b.gep_index(arr_a, Type::I64, i);
        b.store(pa, i, Type::I64);
        let pb = b.gep_index(arr_b, Type::I64, i);
        let i2 = b.mul(i, i);
        b.store(pb, i2, Type::I64);
    });
    // a linked list built in a loop
    let head = b.alloca(Type::Ptr);
    b.store(head, Value::Null, Type::Ptr);
    b.counted_loop(z, b.iconst(64), one, |b, i| {
        let nd = b.alloc(b.iconst(16), Type::Struct(node_ty));
        b.store(nd, i, Type::I64);
        let h = b.load(head, Type::Ptr);
        let nf = b.gep_field(nd, Type::Struct(node_ty), 1);
        b.store(nf, h, Type::Ptr);
        b.store(head, nd, Type::Ptr);
    });
    // a hash-probed table
    let table = b.alloc(b.iconst(512 * 8), Type::I64);
    b.counted_loop(z, b.iconst(256), one, |b, i| {
        let h = b.intrin(Intrinsic::Hash64, vec![i]);
        let slot = b.bin(cards_core::ir::BinOp::URem, h, b.iconst(512), Type::I64);
        let p = b.gep_index(table, Type::I64, slot);
        b.store(p, i, Type::I64);
    });
    b.ret_void();
    m.add_function(b.finish());
    m
}

fn main() {
    let m = build_demo();
    assert!(cards_core::ir::verify_module(&m).is_empty());
    let dsa = ModuleDsa::analyze(&m);
    let prefetch = analyze_prefetch(&m, &dsa, PrefetchSelection::PerDs);
    let ranks = rank_instances(&dsa);

    println!(
        "DSA found {} disjoint data structure instances:\n",
        dsa.instances.len()
    );
    println!(
        "{:<18} {:<10} {:<10} {:>6} {:>7} {:>7}  {:<16}",
        "name", "owner", "recursive", "allocs", "use", "reach", "prefetcher"
    );
    for inst in &dsa.instances {
        let u = &dsa.usage[inst.id as usize];
        let owner = &m.func(inst.owner).name;
        println!(
            "{:<18} {:<10} {:<10} {:>6} {:>7} {:>7}  {:<16}",
            inst.name,
            owner,
            inst.recursive,
            inst.alloc_sites.len(),
            u.use_score(),
            ranks[inst.id as usize].reach_depth,
            format!("{:?}", prefetch[inst.id as usize].kind),
        );
    }

    println!("\nNote: the two arrays come from ONE malloc site inside");
    println!("alloc_array() — context-sensitive cloning keeps them distinct,");
    println!("exactly as ds1/ds2 in the paper's Figure 2.");
}
