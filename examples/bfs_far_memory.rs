//! BFS on far memory: remoting-policy sweep (the Figure 5 scenario).
//!
//! Runs GAP-style BFS with a fixed local-memory budget while sweeping the
//! fraction `k` of data structures each policy may localize.
//!
//! Run with: `cargo run --release --example bfs_far_memory`

use cards_core::prelude::*;
use cards_core::workloads::bfs::{build, reference, BfsParams};

fn main() {
    let params = BfsParams {
        nodes: 8_000,
        degree: 8,
    };
    let ws = params.working_set_bytes();
    println!(
        "BFS: {} nodes, {} edges, working set {} KiB",
        params.nodes,
        params.edges(),
        ws / 1024
    );
    let expect = reference(params);

    // The Figure 5 configuration: pinned memory is plentiful (the paper's
    // testbed RAM exceeds the working set) and only the remotable cache is
    // scarce (the paper reserves 256 MB for BFS). The sweep varies k alone.
    let budget = MemoryBudget::fraction_of(ws, 1.1, 0.1);

    println!("\ncycles by policy and k (% of structures localized):");
    print!("{:<16}", "policy");
    let ks = [25u32, 50, 75, 100];
    for k in ks {
        print!(" {:>14}", format!("k={k}%"));
    }
    println!();
    for policy in [
        RemotingPolicy::AllRemotable,
        RemotingPolicy::Linear,
        RemotingPolicy::Random { seed: 7 },
        RemotingPolicy::MaxReach,
        RemotingPolicy::MaxUse,
    ] {
        print!("{:<16}", policy.name());
        for k in ks {
            let r =
                cards_core::run_far_memory(&move || build(params), policy, k, budget).expect("run");
            assert_eq!(r.checksum, expect);
            print!(" {:>14}", r.cycles);
        }
        println!();
    }
    println!("\n(all-remotable and linear ignore k by construction: linear pins");
    println!("everything on demand and wins; all-remotable never pins and loses)");
}
