//! Differential-oracle integration test: seeded generated programs must
//! behave identically under every pipeline × policy × fault-schedule cell
//! of the matrix, and the harness itself must be deterministic.
//!
//! This is the tier-1 form of `cards difftest` — small enough to run in
//! every `cargo test`, while CI additionally runs the 200-seed smoke
//! campaign through the CLI.

use cards_core::difftest::{check_seed, config_matrix, Pipeline};
use cards_core::ir::testgen::GenConfig;

/// Seeds chosen to cover both the default and the adversarial program
/// shapes (chains, const diamonds, narrow corner arithmetic, frees).
const SEEDS: std::ops::Range<u64> = 1..13;

#[test]
fn matrix_spans_the_required_surface() {
    let m = config_matrix();
    let policies: std::collections::HashSet<String> = m
        .iter()
        .filter(|c| c.pipeline != Pipeline::OptOnly)
        .map(|c| format!("{:?}", c.policy))
        .collect();
    assert_eq!(
        policies.len(),
        4,
        "all four remoting policies: {policies:?}"
    );
    let schedules: std::collections::HashSet<u64> =
        m.iter().map(|c| (c.fault.rate * 100.0) as u64).collect();
    assert!(schedules.len() >= 2, "at least two fault schedules");
}

#[test]
fn generated_programs_agree_across_the_matrix() {
    for seed in SEEDS {
        let gen = if seed % 2 == 0 {
            GenConfig::adversarial()
        } else {
            GenConfig {
                loops: 2,
                with_calls: true,
                ..GenConfig::default()
            }
        };
        let report = check_seed(seed, gen);
        assert!(
            report.oracle.error.is_none(),
            "seed {seed}: oracle must run clean, got {}",
            report.oracle
        );
        assert!(
            report.divergences.is_empty(),
            "seed {seed} diverged: {:?}",
            report
                .divergences
                .iter()
                .map(|d| format!("[{}] {}", d.config.label(), d.got))
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn harness_is_deterministic_across_runs() {
    let a = check_seed(7, GenConfig::adversarial());
    let b = check_seed(7, GenConfig::adversarial());
    assert_eq!(a, b, "same seed + config must observe identical behaviour");
    assert!(
        a.oracle.digest.is_some(),
        "heap digest is part of the oracle"
    );
}
