//! Policy-behaviour integration tests: the qualitative claims of the
//! paper's evaluation, asserted as invariants (who wins, in which regime).

use cards_core::prelude::*;
use cards_core::workloads::{listing1, taxi};
use cards_core::{run_system, MemoryBudget, System};

fn run(policy: RemotingPolicy, k: u32, frac: f64) -> cards_core::RunResult {
    let p = listing1::Listing1Params::test();
    let ws = p.working_set_bytes();
    let budget = MemoryBudget::fraction_of(ws, frac, 0.1);
    run_system(
        &move || listing1::build(p),
        System::Cards { policy, k },
        budget,
    )
    .unwrap()
}

/// Figure 4: at k = 50% (one array pinnable), Max Use localizes ds2 and
/// beats the all-remotable configuration.
#[test]
fn fig4_shape_max_use_beats_all_remotable() {
    let all_remote = run(RemotingPolicy::AllRemotable, 0, 0.6);
    let max_use = run(RemotingPolicy::MaxUse, 50, 0.6);
    assert!(
        max_use.cycles < all_remote.cycles,
        "max-use {} vs all-remotable {}",
        max_use.cycles,
        all_remote.cycles
    );
}

/// More local memory never hurts deterministic policies.
#[test]
fn more_memory_is_monotone_for_informed_policies() {
    for policy in [
        RemotingPolicy::Linear,
        RemotingPolicy::MaxUse,
        RemotingPolicy::MaxReach,
    ] {
        let tight = run(policy, 100, 0.3);
        let roomy = run(policy, 100, 1.2);
        assert!(
            roomy.cycles <= tight.cycles,
            "{}: roomy {} vs tight {}",
            policy.name(),
            roomy.cycles,
            tight.cycles
        );
    }
}

/// With ample memory and k=100, every informed policy pins everything and
/// converges to (near-)equal performance — the left side of Figures 5–7.
#[test]
fn policies_converge_when_everything_fits() {
    let linear = run(RemotingPolicy::Linear, 100, 1.5);
    let max_use = run(RemotingPolicy::MaxUse, 100, 1.5);
    let max_reach = run(RemotingPolicy::MaxReach, 100, 1.5);
    let lo = linear.cycles.min(max_use.cycles).min(max_reach.cycles) as f64;
    let hi = linear.cycles.max(max_use.cycles).max(max_reach.cycles) as f64;
    assert!(hi / lo < 1.05, "spread too wide: {lo}..{hi}");
    // and nothing should be fetching
    assert_eq!(linear.net.fetches, 0);
}

/// The k-sweep matters: for top-k policies, k=0 (nothing pinned) is slower
/// than k=100 (everything pinned) when memory allows.
#[test]
fn k_sweep_controls_localization() {
    let none = run(RemotingPolicy::MaxUse, 0, 1.2);
    let all = run(RemotingPolicy::MaxUse, 100, 1.2);
    assert!(all.cycles < none.cycles);
}

/// Figure 8 regime check on analytics: CaRDS sits between TrackFM (above)
/// and local-only (below); Mira is at least competitive with CaRDS under
/// tight memory.
#[test]
fn fig8_ordering_holds_on_analytics() {
    let p = taxi::TaxiParams { trips: 4_000 };
    let ws = p.working_set_bytes();
    let build = move || taxi::build(p);
    // High-memory regime: k tracks the available fraction (paper §4.2),
    // everything pins, versioned fast paths elide TrackFM's guard tax.
    let budget = MemoryBudget::fraction_of(ws, 1.0, 0.15);
    let local = run_system(&build, System::LocalOnly, budget).unwrap();
    let tfm = run_system(&build, System::TrackFm, budget).unwrap();
    let cards = run_system(
        &build,
        System::Cards {
            policy: RemotingPolicy::MaxUse,
            k: 100,
        },
        budget,
    )
    .unwrap();
    assert!(local.cycles < cards.cycles);
    assert!(
        cards.cycles < tfm.cycles,
        "cards {} vs trackfm {}",
        cards.cycles,
        tfm.cycles
    );
}

/// Demotion under pressure: a pinned-everything policy with tiny local
/// memory must fall back to remotable memory (runtime override), still
/// producing correct results.
#[test]
fn runtime_override_keeps_results_correct() {
    let p = listing1::Listing1Params::test();
    let expect = listing1::reference(p);
    let ws = p.working_set_bytes();
    // 10% local: pinning "everything" is impossible.
    let budget = MemoryBudget::fraction_of(ws, 0.1, 0.5);
    let r = run_system(
        &move || listing1::build(p),
        System::Cards {
            policy: RemotingPolicy::MaxUse,
            k: 100,
        },
        budget,
    )
    .unwrap();
    assert_eq!(r.checksum, expect);
    assert!(r.net.fetches > 0, "pressure must force remote traffic");
}
