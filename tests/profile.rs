//! End-to-end checks for the guard-site attribution profiler: the
//! elision audit fires on a hand-built program, versioned-loop dispatch
//! counts agree with the VM's own entry counters, prefetcher
//! precision/recall matches a scripted sequential pattern, per-site
//! totals cross-sum to the per-DS stats, and all three profile outputs
//! are byte-identical under same-seed replay.

use cards_core::ir::{FunctionBuilder, Module, SiteKind, Type};
use cards_core::net::SimTransport;
use cards_core::passes::{compile, CompileOptions};
use cards_core::runtime::{RemotingPolicy, RuntimeConfig};
use cards_core::vm::{check_attribution, profile_folded, profile_json, render_profile_report, Vm};
use cards_core::workloads::kvstore::{self, KvParams};

/// Three stores to fields of one 24-byte struct: insert_guards plants
/// three guards, elimination collapses them to one, leaving two
/// ElidedGuard sites covered by the survivor. The field stores sit in a
/// loop that also scans a large array, so the struct keeps getting
/// evicted and the surviving guard actually misses.
fn elision_module() -> Module {
    let mut m = Module::new("elide");
    let s3 = m
        .types
        .add_struct("S3", vec![Type::I64, Type::I64, Type::I64]);
    let mut b = FunctionBuilder::new("main", vec![], Type::Void);
    let p = b.alloc(b.iconst(24), Type::Struct(s3));
    let arr = b.alloc(b.iconst(32 * 1024), Type::I64);
    let z = b.iconst(0);
    let reps = b.iconst(4);
    let n = b.iconst(4096);
    let one = b.iconst(1);
    b.counted_loop(z, reps, one, |b, t| {
        for fldi in 0..3 {
            let fp = b.gep_field(p, Type::Struct(s3), fldi);
            b.store(fp, t, Type::I64);
        }
        b.counted_loop(z, n, one, |b, i| {
            let ap = b.gep_index(arr, Type::I64, i);
            b.store(ap, i, Type::I64);
        });
    });
    b.ret_void();
    m.add_function(b.finish());
    m
}

/// A large sequential scan: one DS, one guarded store in a counted loop.
/// Big enough that the loop is versioned and the prefetcher has a clean
/// streaming pattern to chew on.
fn scan_module() -> Module {
    let mut m = Module::new("scan");
    let mut b = FunctionBuilder::new("main", vec![], Type::Void);
    let arr = b.alloc(b.iconst(64 * 1024), Type::I64);
    let z = b.iconst(0);
    let n = b.iconst(8192);
    let one = b.iconst(1);
    b.counted_loop(z, n, one, |b, i| {
        let p = b.gep_index(arr, Type::I64, i);
        b.store(p, i, Type::I64);
    });
    b.ret_void();
    m.add_function(b.finish());
    m
}

fn run_cards(m: Module, cache: u64) -> Vm<SimTransport> {
    let c = compile(m, CompileOptions::cards()).expect("compile");
    let cfg = RuntimeConfig::new(0, cache);
    let mut vm = Vm::new(
        c.module,
        cfg,
        SimTransport::default(),
        RemotingPolicy::AllRemotable,
        100,
    );
    vm.run("main", &[]).expect("run");
    vm
}

#[test]
fn elision_audit_fires_on_hand_built_program() {
    let vm = run_cards(elision_module(), 8192);
    let sites = &vm.module().sites;
    let elided: Vec<_> = sites
        .iter()
        .filter(|s| s.kind == SiteKind::ElidedGuard)
        .collect();
    assert_eq!(elided.len(), 2, "two collapsed field guards");
    let survivor = elided[0].covered_by.expect("elided sites name their cover");
    for e in &elided {
        assert_eq!(e.covered_by, Some(survivor), "both covered by one guard");
    }
    assert_eq!(
        sites.site(survivor).kind,
        SiteKind::Guard,
        "the cover is a live guard"
    );
    // Everything is remotable and nothing is cached up front, so the
    // surviving guard must have missed — the audit has to fire.
    let cov = vm.runtime().profiler().site(survivor.0);
    assert!(cov.misses > 0, "covering guard went remote");
    let report = render_profile_report(&vm, 10);
    assert!(
        report.contains("elision audit"),
        "audit section missing:\n{report}"
    );
    assert!(
        report.contains(&format!("covered by #{}", survivor.0)),
        "audit does not name the surviving guard:\n{report}"
    );
}

#[test]
fn dispatch_counts_match_vm_entry_counters() {
    let vm = run_cards(scan_module(), 8 * 4096);
    let prof = vm.runtime().profiler();
    let dispatch_sites: Vec<_> = vm
        .module()
        .sites
        .iter()
        .filter(|s| s.kind == SiteKind::VersionedDispatch)
        .collect();
    assert!(!dispatch_sites.is_empty(), "scan loop should be versioned");
    let (mut slow, mut fast) = (0u64, 0u64);
    for s in &dispatch_sites {
        let c = prof.site(s.id.0);
        slow += c.slow_entries;
        fast += c.fast_entries;
    }
    assert_eq!(slow, vm.metrics().slow_path_taken, "instrumented entries");
    assert_eq!(fast, vm.metrics().fast_path_taken, "clean entries");
    assert!(
        slow + fast > 0,
        "the dispatch must actually have been taken"
    );
}

#[test]
fn prefetch_precision_recall_match_scripted_pattern() {
    let vm = run_cards(scan_module(), 8 * 4096);
    let prof = vm.runtime().profiler();
    // Profiler-side prefetch totals must agree with the runtime's per-DS
    // stats (the same events, attributed instead of aggregated).
    let (mut p_issued, mut p_useful) = (
        prof.unattributed().prefetch_issued,
        prof.unattributed().prefetch_useful,
    );
    for c in prof.sites() {
        p_issued += c.prefetch_issued;
        p_useful += c.prefetch_useful;
    }
    let (mut d_issued, mut d_useful, mut d_misses) = (0u64, 0u64, 0u64);
    for h in 0..vm.runtime().ds_count() as u16 {
        if let Some(st) = vm.runtime().ds_stats(h) {
            d_issued += st.prefetch_issued;
            d_useful += st.prefetch_useful;
            d_misses += st.misses;
        }
    }
    assert_eq!(p_issued, d_issued, "issued prefetches");
    assert_eq!(p_useful, d_useful, "useful prefetches");
    // A strictly sequential scan under cache pressure must trigger the
    // streaming prefetcher, and some of what it pulls in must get touched
    // before eviction (precision > 0), averting at least one miss
    // (recall > 0). Issued bounds useful by construction.
    assert!(d_issued > 0, "sequential scan must trigger prefetching");
    assert!(d_useful > 0, "some prefetched objects must be touched");
    assert!(d_useful <= d_issued, "useful cannot exceed issued");
    let precision = d_useful as f64 / d_issued as f64;
    let recall = d_useful as f64 / (d_useful + d_misses) as f64;
    assert!(precision > 0.0 && precision <= 1.0, "precision {precision}");
    assert!(recall > 0.0 && recall < 1.0, "recall {recall}");
    // And the JSON export must carry the same numbers.
    let json = profile_json(&vm);
    assert!(
        json.contains(&format!(
            "\"prefetch_issued\":{d_issued},\"prefetch_useful\":{d_useful}"
        )),
        "profile JSON disagrees with DS stats:\n{json}"
    );
}

#[test]
fn per_site_totals_cross_sum_to_per_ds_stats() {
    let (m, _) = kvstore::build(KvParams {
        keys: 128,
        ops: 600,
    });
    let c = compile(m, CompileOptions::cards()).expect("compile");
    let mut vm = Vm::new(
        c.module,
        RuntimeConfig::new(0, 8192),
        SimTransport::default(),
        RemotingPolicy::AllRemotable,
        100,
    );
    vm.run("main", &[]).expect("run");
    check_attribution(&vm).expect("per-site sums must equal per-DS stats");
    // The invariant is only interesting if the run did real remote work.
    let prof = vm.runtime().profiler();
    let total_misses: u64 =
        prof.sites().iter().map(|c| c.misses).sum::<u64>() + prof.unattributed().misses;
    assert!(total_misses > 0, "run must have produced remote traffic");
    assert!(prof.active_sites().count() > 1, "multiple hot sites");
}

#[test]
fn profile_outputs_are_byte_identical_under_replay() {
    let build = || {
        let (m, _) = kvstore::build(KvParams {
            keys: 128,
            ops: 600,
        });
        m
    };
    let run = || run_cards(build(), 8192);
    let (a, b) = (run(), run());
    // Site IDs are stable across recompiles of the same program...
    assert_eq!(
        a.module().sites,
        b.module().sites,
        "site table must be identical across recompiles"
    );
    // ...and every rendered artifact replays byte-for-byte.
    assert_eq!(render_profile_report(&a, 10), render_profile_report(&b, 10));
    assert_eq!(profile_folded(&a), profile_folded(&b));
    assert_eq!(profile_json(&a), profile_json(&b));
}
