//! End-to-end telemetry determinism: a fault-injected workload replayed
//! twice must export byte-identical traces, and the trace must actually
//! carry the signal the observability layer promises — a rich event mix,
//! epoch time-series, and non-trivial latency percentiles.

use std::collections::BTreeSet;

use cards_core::net::{FaultyTransport, NetworkModel, SimTransport};
use cards_core::passes::{compile, CompileOptions};
use cards_core::runtime::telemetry::{export_chrome_trace, export_json, HistPath, TelemetryConfig};
use cards_core::runtime::{RemotingPolicy, RuntimeConfig};
use cards_core::vm::Vm;
use cards_core::workloads::kvstore::{self, KvParams};

/// Build and run the canonical instrumented workload: a cache-starved
/// kvstore, every structure remotable, 20% transient fault rate.
fn run_once() -> Vm<FaultyTransport<SimTransport>> {
    let (m, _) = kvstore::build(KvParams {
        keys: 128,
        ops: 600,
    });
    let c = compile(m, CompileOptions::cards()).expect("compile");
    let cfg = RuntimeConfig::new(0, 8192).with_telemetry(TelemetryConfig {
        enabled: true,
        ring_capacity: 1 << 16,
        epoch_every: 64,
    });
    let transport = FaultyTransport::new(SimTransport::new(NetworkModel::default()), 0.2, 7);
    let mut vm = Vm::new(c.module, cfg, transport, RemotingPolicy::AllRemotable, 0);
    vm.run("main", &[]).expect("run under faults");
    vm
}

#[test]
fn fault_injected_replay_exports_identical_bytes() {
    let (a, b) = (run_once(), run_once());
    let (ja, jb) = (export_json(a.runtime()), export_json(b.runtime()));
    assert_eq!(ja, jb, "JSON export must be byte-reproducible");
    let (ca, cb) = (
        export_chrome_trace(a.runtime()),
        export_chrome_trace(b.runtime()),
    );
    assert_eq!(ca, cb, "chrome trace export must be byte-reproducible");
    assert!(
        ja.len() > 1_000,
        "export is suspiciously small: {}",
        ja.len()
    );
}

#[test]
fn trace_carries_a_rich_event_mix() {
    let vm = run_once();
    let tel = vm.runtime().telemetry();
    let kinds: BTreeSet<&'static str> = tel.events().map(|e| e.kind.name()).collect();
    assert!(
        kinds.len() >= 6,
        "expected >= 6 distinct event kinds, got {kinds:?}"
    );
    for expected in ["guard_hit", "guard_miss", "fetch", "eviction", "retry"] {
        assert!(kinds.contains(expected), "missing {expected}: {kinds:?}");
    }
    // Fault rate 0.2 must show up as retry events, and the cycle stamps
    // must be monotonically non-decreasing (single modeled clock).
    let mut last = 0u64;
    for e in tel.events() {
        assert!(e.cycle >= last, "cycle stamps must not go backwards");
        last = e.cycle;
    }
}

#[test]
fn epochs_and_percentiles_are_nontrivial() {
    let vm = run_once();
    let tel = vm.runtime().telemetry();
    assert!(
        tel.epochs().len() >= 2,
        "600 ops at epoch_every=64 must snapshot repeatedly, got {}",
        tel.epochs().len()
    );
    // Epoch deltas, not cumulative counters: summed hits+misses across all
    // epochs cannot exceed the cumulative totals.
    let summed: u64 = tel
        .epochs()
        .iter()
        .flat_map(|ep| ep.ds.iter())
        .map(|d| d.hits + d.misses)
        .sum();
    let total: u64 = (0..vm.runtime().ds_count() as u16)
        .filter_map(|h| vm.runtime().ds_stats(h))
        .map(|st| st.hits + st.misses)
        .sum();
    assert!(
        summed <= total,
        "epoch deltas ({summed}) exceed totals ({total})"
    );
    assert!(summed > 0, "epochs recorded no guard activity");

    let local = tel.hist(HistPath::DerefLocal);
    let remote = tel.hist(HistPath::DerefRemote);
    assert!(local.count() > 0 && remote.count() > 0);
    assert!(local.p50() > 0, "local deref p50 must be non-trivial");
    assert!(remote.p99() > 0, "remote deref p99 must be non-trivial");
    assert!(
        remote.p50() > local.p50(),
        "remote deref ({}) must cost more than a local hit ({})",
        remote.p50(),
        local.p50()
    );
    assert!(remote.p99() >= remote.p50());
}

#[test]
fn disabling_telemetry_does_not_change_results() {
    let (m, _) = kvstore::build(KvParams {
        keys: 128,
        ops: 600,
    });
    let c = compile(m, CompileOptions::cards()).expect("compile");
    let run = |tel: TelemetryConfig| {
        let cfg = RuntimeConfig::new(0, 8192).with_telemetry(tel);
        let transport = FaultyTransport::new(SimTransport::new(NetworkModel::default()), 0.2, 7);
        let mut vm = Vm::new(
            c.module.clone(),
            cfg,
            transport,
            RemotingPolicy::AllRemotable,
            0,
        );
        let r = vm.run("main", &[]).expect("run").unwrap();
        (r, vm.runtime().stats().cycles)
    };
    let on = run(TelemetryConfig::default());
    let off = run(TelemetryConfig::disabled());
    assert_eq!(on, off, "telemetry must be observation-only");
}
