//! Failure injection: the runtime must retry transient transport faults
//! and keep every workload's results exactly correct.

use cards_core::net::{FaultyTransport, NetworkModel, SimTransport};
use cards_core::passes::{compile, CompileOptions};
use cards_core::runtime::{RemotingPolicy, RuntimeConfig};
use cards_core::vm::Vm;
use cards_core::workloads::{bfs, listing1, micro, taxi};

fn run_faulty(m: cards_core::ir::Module, cache: u64, rate: f64, seed: u64) -> i64 {
    let c = compile(m, CompileOptions::cards()).expect("compile");
    let transport = FaultyTransport::new(SimTransport::new(NetworkModel::default()), rate, seed);
    let mut vm = Vm::new(
        c.module,
        RuntimeConfig::new(0, cache),
        transport,
        RemotingPolicy::AllRemotable,
        0,
    );
    let r = vm.run("main", &[]).expect("run under faults").unwrap() as i64;
    assert!(
        vm.runtime().stats().retries > 0,
        "fault rate {rate} should have forced retries"
    );
    r
}

#[test]
fn listing1_survives_30pct_faults() {
    let p = listing1::Listing1Params::test();
    let (m, _) = listing1::build(p);
    let got = run_faulty(m, 4096, 0.3, 11);
    assert_eq!(got, listing1::reference(p));
}

#[test]
fn taxi_survives_faults() {
    let p = taxi::TaxiParams { trips: 1_000 };
    let (m, _) = taxi::build(p);
    let got = run_faulty(m, 8 * 4096, 0.2, 22);
    assert_eq!(got, taxi::reference(p));
}

#[test]
fn bfs_survives_faults() {
    let p = bfs::BfsParams {
        nodes: 300,
        degree: 5,
    };
    let (m, _) = bfs::build(p);
    let got = run_faulty(m, 2 * 4096, 0.2, 33);
    assert_eq!(got, bfs::reference(p));
}

#[test]
fn pointer_chasing_list_survives_faults() {
    let p = micro::MicroParams {
        elems: 128,
        reps: 2,
    };
    let (m, _) = micro::build(micro::MicroKind::List, p);
    let got = run_faulty(m, 4096, 0.25, 44);
    assert_eq!(got, micro::reference(micro::MicroKind::List, p));
}

#[test]
fn retries_are_priced() {
    // The same run with faults must cost strictly more cycles than without.
    let p = listing1::Listing1Params::test();
    let run = |rate: f64| {
        let (m, _) = listing1::build(p);
        let c = compile(m, CompileOptions::cards()).unwrap();
        let transport = FaultyTransport::new(SimTransport::new(NetworkModel::default()), rate, 5);
        let mut vm = Vm::new(
            c.module,
            RuntimeConfig::new(0, 4096),
            transport,
            RemotingPolicy::AllRemotable,
            0,
        );
        vm.run("main", &[]).unwrap();
        vm.metrics().cycles
    };
    let clean = run(0.0);
    let faulty = run(0.4);
    assert!(faulty > clean, "faulty {faulty} vs clean {clean}");
}

#[test]
fn threaded_transport_matches_sim_results() {
    // The cross-thread "two machines" configuration must agree with the
    // in-process transport bit for bit.
    use cards_core::net::ThreadedTransport;
    let p = listing1::Listing1Params::test();
    let run_sim = {
        let (m, _) = listing1::build(p);
        let c = compile(m, CompileOptions::cards()).unwrap();
        let mut vm = Vm::new(
            c.module,
            RuntimeConfig::new(0, 4 * 4096),
            SimTransport::new(NetworkModel::default()),
            RemotingPolicy::AllRemotable,
            0,
        );
        let r = vm.run("main", &[]).unwrap().unwrap();
        (r, vm.metrics().cycles)
    };
    let run_threaded = {
        let (m, _) = listing1::build(p);
        let c = compile(m, CompileOptions::cards()).unwrap();
        let mut vm = Vm::new(
            c.module,
            RuntimeConfig::new(0, 4 * 4096),
            ThreadedTransport::spawn(NetworkModel::default()),
            RemotingPolicy::AllRemotable,
            0,
        );
        let r = vm.run("main", &[]).unwrap().unwrap();
        (r, vm.metrics().cycles)
    };
    assert_eq!(run_sim, run_threaded);
}
