//! End-to-end checks for the causal request tracer: span trees are
//! properly nested with valid parents, per-phase self-cycles sum to each
//! operation's total, trace context reaches the wire tap, chaos runs
//! account wire/backoff/retry/journal-replay phases separately, the
//! flight recorder dumps on anomaly triggers, and the trace export is
//! byte-identical across recompile + faulty replay.

use cards_core::ir::{FunctionBuilder, Module, Type};
use cards_core::net::{ChaosSchedule, ChaosTransport, FaultyTransport, SimTransport, Transport};
use cards_core::passes::{compile, CompileOptions};
use cards_core::runtime::{RemotingPolicy, RuntimeConfig, SpanKind, TraceConfig};
use cards_core::vm::{check_traces, flight_json, render_ttrace_report, ttrace_json, Vm};
use cards_core::workloads::kvstore::{self, KvParams};

fn kv_module() -> Module {
    kvstore::build(KvParams {
        keys: 128,
        ops: 600,
    })
    .0
}

/// Write-then-scan kernel big enough to outlast a storm schedule's crash
/// window under a 2-object cache.
fn churn_module() -> Module {
    let mut m = Module::new("churn");
    let mut b = FunctionBuilder::new("main", vec![], Type::I64);
    let n = 32 * 1024i64;
    let arr = b.alloc(b.iconst(n * 8), Type::I64);
    let (z, one) = (b.iconst(0), b.iconst(1));
    b.counted_loop(z, b.iconst(n), one, |b, i| {
        let p = b.gep_index(arr, Type::I64, i);
        b.store(p, i, Type::I64);
    });
    let acc = b.alloca(Type::I64);
    b.store(acc, b.iconst(0), Type::I64);
    b.counted_loop(z, b.iconst(n), one, |b, i| {
        let p = b.gep_index(arr, Type::I64, i);
        let v = b.load(p, Type::I64);
        let cur = b.load(acc, Type::I64);
        let nx = b.add(cur, v);
        b.store(acc, nx, Type::I64);
    });
    let out = b.load(acc, Type::I64);
    b.ret(out);
    m.add_function(b.finish());
    m
}

fn run_traced<T: Transport>(m: Module, transport: T, cfg: RuntimeConfig) -> Vm<T> {
    let c = compile(m, CompileOptions::cards()).expect("compile");
    let mut vm = Vm::new(c.module, cfg, transport, RemotingPolicy::AllRemotable, 0);
    vm.run("main", &[]).expect("run");
    vm
}

#[test]
fn spans_have_valid_parents_and_nest_properly() {
    let vm = run_traced(
        kv_module(),
        SimTransport::default(),
        RuntimeConfig::new(0, 8192),
    );
    let tr = vm.runtime().tracer();
    assert!(tr.remote_ops() > 0, "run must trace remote operations");
    let mut checked = 0usize;
    for t in tr.trees() {
        // Root is span 0 with no parent; every other span names a parent
        // with a smaller index, so trees are acyclic by construction.
        assert_eq!(t.root().parent, None, "trace {}", t.trace);
        for (i, sp) in t.spans.iter().enumerate().skip(1) {
            let p = sp
                .parent
                .unwrap_or_else(|| panic!("trace {}: span {} has no parent", t.trace, i));
            assert!(
                (p as usize) < i,
                "trace {}: span {} points forward to {}",
                t.trace,
                i,
                p
            );
        }
        // Proper nesting: a parent's cycles bound the sum of its children.
        for i in 0..t.spans.len() as u32 {
            let child_sum: u64 = t.children(i).map(|(_, s)| s.cycles).sum();
            assert!(
                child_sum <= t.spans[i as usize].cycles,
                "trace {}: children of span {} sum to {} > parent {}",
                t.trace,
                i,
                child_sum,
                t.spans[i as usize].cycles
            );
        }
        t.validate().expect("structural invariants");
        checked += 1;
    }
    assert!(checked > 0, "the ring must retain trees");
}

#[test]
fn per_phase_cycles_sum_to_operation_total() {
    let vm = run_traced(
        kv_module(),
        SimTransport::default(),
        RuntimeConfig::new(0, 8192),
    );
    for t in vm.runtime().tracer().trees() {
        let phase_sum: u64 = t.phase_breakdown().iter().map(|(_, c)| c).sum();
        assert_eq!(
            phase_sum,
            t.root().cycles,
            "trace {}: phases must sum to the operation total",
            t.trace
        );
    }
    // And the cumulative invariant over the whole run.
    check_traces(&vm).expect("cross-sum invariants");
}

#[test]
fn trace_context_reaches_the_wire_tap() {
    let vm = run_traced(
        kv_module(),
        SimTransport::default(),
        RuntimeConfig::new(0, 8192),
    );
    let tap = vm.runtime().transport().wire_tap().expect("sim has a tap");
    assert!(tap.total() > 0, "remote traffic must hit the tap");
    let traced = tap.records().filter(|r| r.ctx.is_traced()).count();
    assert!(
        traced > 0,
        "wire records must carry the guard's trace context"
    );
}

#[test]
fn chaos_storm_accounts_failure_phases_and_dumps_flight() {
    let cfg = RuntimeConfig::new(0, 2 * 4096)
        .with_max_retries(32)
        .with_trace(TraceConfig {
            retry_storm_threshold: 4,
            ..TraceConfig::default()
        });
    let vm = run_traced(
        churn_module(),
        ChaosTransport::new(ChaosSchedule::storm(7)),
        cfg,
    );
    let tr = vm.runtime().tracer();
    // The failure-path phases are separately accounted, not folded into
    // the wire cost.
    let phase = |k: SpanKind| {
        tr.phase_totals()
            .find(|(kind, _)| *kind == k)
            .map(|(_, c)| c)
            .unwrap_or(0)
    };
    assert!(phase(SpanKind::Wire) > 0, "wire cycles");
    assert!(phase(SpanKind::Retry) > 0, "failed-attempt cycles");
    assert!(phase(SpanKind::Backoff) > 0, "backoff sleep cycles");
    check_traces(&vm).expect("phases still sum to operation totals");
    // The storm trips an anomaly trigger and the flight recorder dumps.
    assert!(!tr.triggers().is_empty(), "storm must fire a trigger");
    assert!(!tr.snapshots().is_empty(), "trigger must snapshot the ring");
    let flight = flight_json(&vm, 0).expect("snapshot 0 exists");
    assert!(flight.starts_with("{\"schema\":\"cards-flight-v1\""));
    assert!(flight.contains("\"trigger\":{\"reason\":\""));
    // The rendered report names the failure phases separately.
    let report = render_ttrace_report(&vm, 5);
    assert!(report.contains("backoff"), "report: {report}");
    assert!(report.contains("retry"), "report: {report}");
}

#[test]
fn journal_replay_phase_is_accounted_under_crash_loop() {
    let cfg = RuntimeConfig::new(0, 2 * 4096).with_max_retries(32);
    let vm = run_traced(
        churn_module(),
        ChaosTransport::new(ChaosSchedule::crash_loop(7)),
        cfg,
    );
    let tr = vm.runtime().tracer();
    let replay = tr
        .phase_totals()
        .find(|(k, _)| *k == SpanKind::JournalReplay)
        .map(|(_, c)| c)
        .unwrap_or(0);
    assert!(
        vm.runtime().stats().journal_replays > 0,
        "crash loop must force journal replays"
    );
    assert!(replay > 0, "journal-replay cycles must be attributed");
    check_traces(&vm).expect("invariants under crash loop");
}

#[test]
fn trace_export_is_byte_identical_across_recompile_and_faulty_replay() {
    let run = || {
        let c = compile(kv_module(), CompileOptions::cards()).expect("compile");
        let mut vm = Vm::new(
            c.module,
            RuntimeConfig::new(0, 8192),
            FaultyTransport::new(SimTransport::default(), 0.2, 0xfa17),
            RemotingPolicy::AllRemotable,
            0,
        );
        vm.run("main", &[]).expect("run");
        ttrace_json(&vm)
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b, "trace export must replay byte-for-byte");
    assert!(a.starts_with("{\"schema\":\"cards-ttrace-v1\""));
    // Faulty replay produces retry spans, so the export carries attempts.
    assert!(a.contains("\"retry\":"), "phases must include retry");
}

#[test]
fn disabled_tracer_records_nothing() {
    let cfg = RuntimeConfig::new(0, 8192).with_trace(TraceConfig::disabled());
    let vm = run_traced(kv_module(), SimTransport::default(), cfg);
    let tr = vm.runtime().tracer();
    assert_eq!(tr.remote_ops(), 0);
    assert_eq!(tr.trees().count(), 0);
    assert!(tr.triggers().is_empty());
}
