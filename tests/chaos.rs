//! Chaos-transport integration: a workload driven through phase-scripted
//! failure schedules (loss bursts, latency spikes, partitions, payload
//! corruption, server crash/restart) must still compute the clean-run
//! answer, replay to byte-identical telemetry, and leave a coherent
//! resilience trail in the exports.

use std::collections::BTreeSet;

use cards_core::net::{ChaosPhase, ChaosSchedule, ChaosTransport, NetworkModel, ScheduledPhase};
use cards_core::passes::{compile, CompileOptions};
use cards_core::runtime::telemetry::{export_chrome_trace, export_json, HistPath, TelemetryConfig};
use cards_core::runtime::{render_report, RemotingPolicy, RuntimeConfig};
use cards_core::vm::Vm;
use cards_core::workloads::kvstore::{self, KvParams};

/// Cache-starved kvstore over a chaos schedule: plenty of transport churn,
/// so every phase kind sees traffic.
fn run_chaos(sched: ChaosSchedule) -> Vm<ChaosTransport> {
    let (m, _) = kvstore::build(KvParams {
        keys: 128,
        ops: 600,
    });
    let c = compile(m, CompileOptions::cards()).expect("compile");
    let cfg = RuntimeConfig::new(0, 8192)
        // Budget must cover the longest all-fail window of the schedules
        // (bounded at <= 12 ops by a cards-net test).
        .with_max_retries(32)
        .with_telemetry(TelemetryConfig {
            enabled: true,
            ring_capacity: 1 << 16,
            epoch_every: 64,
        });
    let mut vm = Vm::new(
        c.module,
        cfg,
        ChaosTransport::new(sched),
        RemotingPolicy::AllRemotable,
        0,
    );
    vm.run("main", &[]).expect("run under chaos");
    vm
}

fn run_clean() -> u64 {
    let (m, _) = kvstore::build(KvParams {
        keys: 128,
        ops: 600,
    });
    let c = compile(m, CompileOptions::cards()).expect("compile");
    let mut vm = Vm::new(
        c.module,
        RuntimeConfig::new(0, 8192),
        cards_core::net::SimTransport::default(),
        RemotingPolicy::AllRemotable,
        0,
    );
    vm.run("main", &[]).expect("clean run").expect("checksum")
}

/// The regression the telemetry layer promises: replaying the same chaos
/// run twice — crashes, corrupt fetches, breaker trips and all — exports
/// byte-identical traces in both formats.
#[test]
fn chaos_replay_exports_identical_bytes() {
    for sched in [ChaosSchedule::storm(3), ChaosSchedule::crash_loop(3)] {
        let (a, b) = (run_chaos(sched.clone()), run_chaos(sched));
        let (ja, jb) = (export_json(a.runtime()), export_json(b.runtime()));
        assert_eq!(ja, jb, "JSON export must be byte-reproducible");
        let (ca, cb) = (
            export_chrome_trace(a.runtime()),
            export_chrome_trace(b.runtime()),
        );
        assert_eq!(ca, cb, "chrome trace must be byte-reproducible");
    }
}

/// Chaos may cost cycles but never correctness: the crash-restart schedule
/// computes the same checksum as a clean transport, with the recovery
/// machinery visibly engaged.
#[test]
fn crash_restart_matches_clean_run() {
    let expected = run_clean();
    let vm = run_chaos(ChaosSchedule::crash_loop(11));
    let rt = vm.runtime();
    let got = rt.transport();
    assert!(got.chaos_stats().crashes >= 1, "crash phases must fire");
    let g = rt.stats();
    assert!(g.timeouts > 0, "crash windows present as timeouts");
    assert!(g.crashes_detected >= 1, "generation bumps must be noticed");
    // The same program under chaos computes the same answer.
    let (m, _) = kvstore::build(KvParams {
        keys: 128,
        ops: 600,
    });
    let c = compile(m, CompileOptions::cards()).expect("compile");
    let mut vm2 = Vm::new(
        c.module,
        RuntimeConfig::new(0, 8192).with_max_retries(32),
        ChaosTransport::new(ChaosSchedule::crash_loop(11)),
        RemotingPolicy::AllRemotable,
        0,
    );
    let got = vm2.run("main", &[]).expect("run").expect("checksum");
    assert_eq!(got, expected, "crash/restart must not change the result");
}

/// The degraded-run trail shows up in every export surface: typed events
/// in the JSON trace, ds-scoped tracks in the chrome trace, and the
/// resilience section of the human report.
#[test]
fn chaos_trail_reaches_every_export_surface() {
    let vm = run_chaos(ChaosSchedule::storm(5));
    let rt = vm.runtime();
    let json = export_json(rt);
    let kinds: BTreeSet<&str> = [
        "retry",
        "net_abort",
        "breaker",
        "crash_detected",
        "journal_replay",
    ]
    .into_iter()
    .filter(|k| json.contains(&format!("\"kind\":\"{k}\"")))
    .collect();
    assert!(
        kinds.contains("retry"),
        "storm run must log retries: saw {kinds:?}"
    );
    assert!(
        json.contains("\"timeouts\""),
        "totals must carry the resilience counters"
    );
    let report = render_report(rt);
    assert!(
        report.contains("resilience:"),
        "degraded run must render the resilience section:\n{report}"
    );
    assert!(report.contains("recovery:"), "{report}");
}

/// Regression for the phase-blind `ChaosTransport::rtt_cost`: a retry
/// priced while a latency spike is in force must charge the spiked RTT,
/// and that price has to reach the runtime's resilience trail (the
/// retry-attempt histogram), not just the transport's internal costing.
#[test]
fn resilience_trail_prices_retries_at_spiked_rtt() {
    // Two guaranteed losses, then a long latency spike. The retry of the
    // second loss is priced under the spike (the op counter has moved into
    // the spike window), so the histogram must record `mult * base`; the
    // first loss's retry is still priced inside the lossy window at `base`.
    const MULT: u64 = 6;
    let spiked = ChaosSchedule {
        phases: vec![
            ScheduledPhase {
                phase: ChaosPhase::LossyBurst { rate: 1.0 },
                ops: 2,
            },
            ScheduledPhase {
                phase: ChaosPhase::LatencySpike { mult: MULT },
                ops: 1 << 30,
            },
        ],
        repeat: false,
        seed: 7,
    };
    let model = NetworkModel::default();
    let base = model.base_latency + model.per_msg_cpu;
    let vm = run_chaos(spiked);
    let rt = vm.runtime();
    assert!(rt.stats().retries >= 2, "both losses must retry");
    let h = rt.telemetry().hist(HistPath::RetryAttempt);
    assert_eq!(
        h.max(),
        MULT * base,
        "a retry priced inside the spike must charge the spiked RTT"
    );
    assert_eq!(h.min(), base, "pre-spike retry stays at the plain RTT");
    let report = render_report(rt);
    assert!(report.contains("resilience:"), "{report}");

    // Control: the same losses followed by a healthy window never price a
    // retry above the plain RTT.
    let control = ChaosSchedule {
        phases: vec![
            ScheduledPhase {
                phase: ChaosPhase::LossyBurst { rate: 1.0 },
                ops: 2,
            },
            ScheduledPhase {
                phase: ChaosPhase::Healthy,
                ops: 1 << 30,
            },
        ],
        repeat: false,
        seed: 7,
    };
    let vm = run_chaos(control);
    let h = vm.runtime().telemetry().hist(HistPath::RetryAttempt);
    assert_eq!(h.max(), base, "healthy-phase retries are never spiked");
}
