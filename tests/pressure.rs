//! Memory-pressure integration: a workload driven through phase-scripted
//! budget schedules (squeeze, cliff, sawtooth) must still compute the
//! clean-run answer, replay to byte-identical telemetry, and leave a
//! coherent governor trail (re-solves, hint demotions, spills,
//! pin-starvation relief) in the exports.

use cards_core::net::SimTransport;
use cards_core::passes::{compile, CompileOptions};
use cards_core::runtime::telemetry::{export_chrome_trace, export_json, TelemetryConfig};
use cards_core::runtime::{
    render_report, Access, DsSpec, EventKind, FarMemRuntime, PressureConfig, PressureSchedule,
    RemotingPolicy, RuntimeConfig, StaticHint,
};
use cards_core::vm::Vm;
use cards_core::workloads::kvstore::{self, KvParams};

/// Pinned-and-cache-starved kvstore under a pressure schedule: enough DSes
/// on both sides of the hint split that squeezes force the governor's hand.
fn run_pressured(sched: PressureSchedule) -> Vm<SimTransport> {
    let (m, _) = kvstore::build(KvParams {
        keys: 128,
        ops: 600,
    });
    let c = compile(m, CompileOptions::cards()).expect("compile");
    let cfg = RuntimeConfig::new(4 * 4096, 4 * 4096)
        .with_pressure(PressureConfig::governed())
        .with_telemetry(TelemetryConfig {
            enabled: true,
            ring_capacity: 1 << 16,
            epoch_every: 64,
        });
    let mut vm = Vm::new(
        c.module,
        cfg,
        SimTransport::default(),
        RemotingPolicy::MaxUse,
        50,
    );
    vm.runtime_mut().set_pressure_schedule(sched);
    vm.run("main", &[]).expect("run under pressure");
    vm
}

fn run_clean() -> u64 {
    let (m, _) = kvstore::build(KvParams {
        keys: 128,
        ops: 600,
    });
    let c = compile(m, CompileOptions::cards()).expect("compile");
    let mut vm = Vm::new(
        c.module,
        RuntimeConfig::new(4 * 4096, 4 * 4096),
        SimTransport::default(),
        RemotingPolicy::MaxUse,
        50,
    );
    vm.run("main", &[]).expect("clean run").expect("checksum")
}

/// The regression the telemetry layer promises: replaying the same
/// pressure run twice — phase changes, sweeps, re-solves and all — exports
/// byte-identical traces in both formats.
#[test]
fn pressure_replay_exports_identical_bytes() {
    for sched in [PressureSchedule::squeeze(), PressureSchedule::sawtooth()] {
        let (a, b) = (run_pressured(sched.clone()), run_pressured(sched));
        let (ja, jb) = (export_json(a.runtime()), export_json(b.runtime()));
        assert_eq!(ja, jb, "JSON export must be byte-reproducible");
        let (ca, cb) = (
            export_chrome_trace(a.runtime()),
            export_chrome_trace(b.runtime()),
        );
        assert_eq!(ca, cb, "chrome trace must be byte-reproducible");
    }
}

/// Pressure may cost cycles but never correctness — and the squeeze must
/// demonstrably push the governor through at least one online re-solve
/// whose hint demotion shows up in the human report.
#[test]
fn squeeze_matches_clean_run_and_resolves_online() {
    let expected = run_clean();
    let vm = run_pressured(PressureSchedule::squeeze());
    let rt = vm.runtime();
    let g = rt.stats();
    assert!(g.pressure_phase_changes >= 3, "squeeze phases must fire");
    assert!(g.resolves >= 1, "squeeze must trigger an online re-solve");
    assert!(g.hint_demotions >= 1, "the re-solve must demote a hint");
    let report = render_report(rt);
    assert!(report.contains("pressure:"), "{report}");
    assert!(report.contains("re-solve:"), "{report}");
    assert!(
        report.lines().any(|l| l.contains("demote ds")),
        "demotion must appear in the re-solve trail:\n{report}"
    );
    // The same program under pressure computes the same answer.
    let (m, _) = kvstore::build(KvParams {
        keys: 128,
        ops: 600,
    });
    let c = compile(m, CompileOptions::cards()).expect("compile");
    let mut vm2 = Vm::new(
        c.module,
        RuntimeConfig::new(4 * 4096, 4 * 4096).with_pressure(PressureConfig::governed()),
        SimTransport::default(),
        RemotingPolicy::MaxUse,
        50,
    );
    vm2.runtime_mut()
        .set_pressure_schedule(PressureSchedule::squeeze());
    let got = vm2.run("main", &[]).expect("run").expect("checksum");
    assert_eq!(got, expected, "a squeeze must not change the result");
}

/// Every pressure schedule agrees with the clean run, and the pressure
/// trail reaches every export surface: typed events in the JSON trace and
/// the pressure section of the human report.
#[test]
fn pressure_trail_reaches_every_export_surface() {
    let expected = run_clean();
    for sched in [
        PressureSchedule::squeeze(),
        PressureSchedule::cliff(),
        PressureSchedule::sawtooth(),
    ] {
        let vm = run_pressured(sched);
        let rt = vm.runtime();
        let json = export_json(rt);
        assert!(
            json.contains("\"kind\":\"pressure_phase\""),
            "phase changes must be logged: {json:.>128}"
        );
        assert!(
            json.contains("\"proactive_evictions\""),
            "totals must carry the pressure counters"
        );
        let report = render_report(rt);
        assert!(
            report.contains("pressure:"),
            "pressured run must render the pressure section:\n{report}"
        );
        assert!(report.contains("spills:"), "{report}");
        // Re-check the checksum on a fresh VM of the same cell.
        let mut vm2 = {
            let (m, _) = kvstore::build(KvParams {
                keys: 128,
                ops: 600,
            });
            let c = compile(m, CompileOptions::cards()).expect("compile");
            Vm::new(
                c.module,
                RuntimeConfig::new(4 * 4096, 4 * 4096).with_pressure(PressureConfig::governed()),
                SimTransport::default(),
                RemotingPolicy::MaxUse,
                50,
            )
        };
        let got = vm2.run("main", &[]).expect("run").expect("checksum");
        assert_eq!(got, expected);
    }
}

/// An object bigger than the whole remotable budget can never be
/// localized; the runtime must serve it by spilling (direct remote
/// access), not by wedging in `failed_localize` or silently
/// overcommitting — and the data read back must be exact.
#[test]
fn oversize_object_spills_instead_of_dead_ending() {
    // 8 KiB objects against a 4 KiB cache, default (ungoverned) config.
    let spec = DsSpec::simple("oversize").with_object_bytes(8192);
    let mut rt = FarMemRuntime::new(RuntimeConfig::new(0, 4096), SimTransport::default());
    let h = rt.register_ds(spec, StaticHint::Remotable);
    let (p, _) = rt.ds_alloc(h, 4 * 8192).unwrap();
    for i in 0..4u64 {
        rt.guard(p.add(i * 8192), Access::Write, 8).unwrap();
        rt.write_u64(p.add(i * 8192), 0xC0DE + i).unwrap();
    }
    for i in 0..4u64 {
        rt.evacuate(p.add(i * 8192)).unwrap();
    }
    // Strict mode, objects remote, every access guarded: each guard takes
    // the spill path because the object cannot fit.
    for i in 0..4u64 {
        rt.guard(p.add(i * 8192), Access::Read, 8).unwrap();
        let (v, _) = rt.read_u64(p.add(i * 8192)).unwrap();
        assert_eq!(v, 0xC0DE + i, "spilled read must see the written bytes");
    }
    let g = rt.stats();
    assert!(g.spill_reads >= 4, "oversize reads must spill: {g:?}");
    assert_eq!(
        rt.remotable_used(),
        0,
        "an oversize object must never be force-fitted into the cache"
    );
    // Spilled writes round-trip too.
    rt.guard(p, Access::Write, 8).unwrap();
    rt.write_u64(p, 0xBEEF).unwrap();
    rt.guard(p, Access::Read, 8).unwrap();
    assert_eq!(rt.read_u64(p).unwrap().0, 0xBEEF);
    assert!(rt.stats().spill_writes >= 1);
}

/// Scope pins plus a tiny cache wedge the eviction sweep. Under the
/// governor the runtime relieves pin starvation (shrinks the recent-guard
/// window) and reports every wedge in telemetry — while scope-pinned
/// residents stay readable without re-guarding.
#[test]
fn scope_pin_starvation_relieves_and_stays_correct() {
    let cfg = RuntimeConfig::new(0, 2 * 4096)
        .with_pressure(PressureConfig::governed())
        .with_telemetry(TelemetryConfig {
            enabled: true,
            ring_capacity: 1 << 12,
            epoch_every: 64,
        });
    let mut rt = FarMemRuntime::new(cfg, SimTransport::default());
    let h = rt.register_ds(DsSpec::simple("s"), StaticHint::Remotable);
    let (p, _) = rt.ds_alloc(h, 16 * 4096).unwrap();
    for i in 0..16u64 {
        rt.guard(p.add(i * 4096), Access::Write, 8).unwrap();
        rt.write_u64(p.add(i * 4096), i).unwrap();
    }
    for i in 0..16u64 {
        rt.evacuate(p.add(i * 4096)).unwrap();
    }
    // Pin more than the cache holds inside one scope, then keep going.
    rt.begin_scope();
    for i in 0..6u64 {
        rt.guard(p.add(i * 4096), Access::Read, 8).unwrap();
    }
    for i in 0..6u64 {
        let (v, _) = rt.read_u64(p.add(i * 4096)).unwrap();
        assert_eq!(v, i, "scope-pinned reads must stay correct");
    }
    rt.end_scope();
    let g = rt.stats();
    assert!(
        g.pin_starvations >= 1,
        "the wedged sweep must be reported as pin starvation: {g:?}"
    );
    assert!(
        rt.telemetry()
            .events()
            .any(|e| matches!(e.kind, EventKind::PinStarvation { .. })),
        "pin_starvation must reach the event ring"
    );
    let report = render_report(&rt);
    assert!(report.contains("pin starvations"), "{report}");
}

/// Clock eviction gives referenced objects a second chance: an object
/// touched since the last sweep survives the next one; the untouched
/// object at the clock hand is evicted instead.
#[test]
fn clock_eviction_honours_second_chance() {
    // Remotable cache of exactly 3 objects, plus a pinned filler DS whose
    // guards age victims out of the recent-guard pin window without
    // touching the clock.
    let mut rt = FarMemRuntime::new(
        RuntimeConfig::new(8 * 4096, 3 * 4096),
        SimTransport::default(),
    );
    let v = rt.register_ds(DsSpec::simple("victims"), StaticHint::Remotable);
    let f = rt.register_ds(DsSpec::simple("filler"), StaticHint::Pinned);
    let (pv, _) = rt.ds_alloc(v, 6 * 4096).unwrap();
    let (pf, _) = rt.ds_alloc(f, 8 * 4096).unwrap();
    for i in 0..6u64 {
        rt.guard(pv.add(i * 4096), Access::Write, 8).unwrap();
        rt.write_u64(pv.add(i * 4096), i).unwrap();
    }
    for i in 0..6u64 {
        rt.evacuate(pv.add(i * 4096)).unwrap();
    }
    // Guards on 8 distinct pinned objects flush the recent-guard window.
    let flush_window = |rt: &mut FarMemRuntime<SimTransport>| {
        for i in 0..8u64 {
            rt.guard(pf.add(i * 4096), Access::Read, 8).unwrap();
        }
    };
    // Fill the cache: V0..V2 resident, all with the reference bit set.
    for i in 0..3u64 {
        rt.guard(pv.add(i * 4096), Access::Read, 8).unwrap();
    }
    flush_window(&mut rt);
    // First sweep second-chances everyone (clearing their bits) and
    // evicts V0. Residents: {V1, V2, V3}, V1/V2 unreferenced.
    rt.guard(pv.add(3 * 4096), Access::Read, 8).unwrap();
    // Touch V2: it alone regains the reference bit.
    rt.guard(pv.add(2 * 4096), Access::Read, 8).unwrap();
    flush_window(&mut rt);
    // Next sweep: V1 (hand position, unreferenced) goes; V2 survives on
    // its second chance even though V1 is no more recently inserted.
    rt.guard(pv.add(4 * 4096), Access::Read, 8).unwrap();
    flush_window(&mut rt);
    let misses_before = rt.ds_stats(v).unwrap().misses;
    rt.guard(pv.add(2 * 4096), Access::Read, 8).unwrap();
    assert_eq!(
        rt.ds_stats(v).unwrap().misses,
        misses_before,
        "touched V2 must have survived the sweep"
    );
    assert_eq!(rt.read_u64(pv.add(2 * 4096)).unwrap().0, 2);
    rt.guard(pv.add(4096), Access::Read, 8).unwrap();
    assert_eq!(
        rt.ds_stats(v).unwrap().misses,
        misses_before + 1,
        "unreferenced V1 must have been the victim"
    );
}

/// A dirty eviction writes back to the server *before* the writeback is
/// journaled as unacknowledged: the data is immediately re-fetchable
/// without any flush, and the journal drains only when one succeeds.
#[test]
fn dirty_eviction_writes_back_before_journal_ack() {
    // Cache of one object; big flush interval so the journal holds.
    let mut rt = FarMemRuntime::new(
        RuntimeConfig::new(8 * 4096, 4096).with_journal(1_000),
        SimTransport::default(),
    );
    let v = rt.register_ds(DsSpec::simple("kv"), StaticHint::Remotable);
    let f = rt.register_ds(DsSpec::simple("filler"), StaticHint::Pinned);
    let (pv, _) = rt.ds_alloc(v, 2 * 4096).unwrap();
    let (pf, _) = rt.ds_alloc(f, 8 * 4096).unwrap();
    rt.guard(pv, Access::Write, 8).unwrap();
    rt.write_u64(pv, 0xFEED).unwrap();
    rt.evacuate(pv).unwrap();
    rt.guard(pv.add(4096), Access::Write, 8).unwrap();
    rt.write_u64(pv.add(4096), 0xD1B7).unwrap();
    // Age V1 out of the recent-guard window, then fault V0 back in: the
    // only frame is V1's, and V1 is dirty. Flush first so the journal
    // growth below is attributable to that one eviction.
    for i in 0..8u64 {
        rt.guard(pf.add(i * 4096), Access::Read, 8).unwrap();
    }
    rt.flush_writebacks();
    assert_eq!(rt.journal_len(), 0);
    rt.guard(pv, Access::Read, 8).unwrap();
    assert_eq!(rt.read_u64(pv).unwrap().0, 0xFEED);
    assert_eq!(
        rt.journal_len(),
        1,
        "a dirty eviction must journal its writeback"
    );
    // The writeback itself already happened: the evicted dirty object is
    // re-fetchable with the journal still unflushed.
    for i in 0..8u64 {
        rt.guard(pf.add(i * 4096), Access::Read, 8).unwrap();
    }
    rt.guard(pv.add(4096), Access::Read, 8).unwrap();
    assert_eq!(
        rt.read_u64(pv.add(4096)).unwrap().0,
        0xD1B7,
        "dirty data must be on the server before the flush"
    );
    rt.flush_writebacks();
    assert_eq!(rt.journal_len(), 0, "a successful flush drains the journal");
}
