//! Concurrent sharded-tier integration: worker VMs racing over one
//! remote tier must coalesce duplicate in-flight misses, survive shard
//! crash/restart through the write journal, quiesce to the serial-replay
//! digest regardless of worker count or shard count, and surface server
//! death as a deterministic `Disconnected` — never a hang.

use cards_core::net::{NetError, NetworkModel, ShardedConfig, ShardedServer, ThreadedTransport};
use cards_core::passes::{compile, CompileOptions};
use cards_core::runtime::{RemotingPolicy, RtError, RuntimeConfig};
use cards_core::vm::{run_serial_replay, run_serving, ServeSpec, Vm, VmError};
use cards_core::workloads::serving::{self, ServingParams};

/// The CaRDS-compiled split serving module (host-callable `setup` and
/// `request` entries).
fn split_module(p: ServingParams) -> cards_core::ir::Module {
    let m = serving::build_split(p);
    assert!(cards_core::ir::verify_module(&m).is_empty());
    compile(m, CompileOptions::cards()).expect("compile").module
}

/// Two worker VMs with identical histories run the same session against a
/// stalled single shard: the first blocks as the coalescing leader, the
/// second — whose deterministic cache state makes it miss on the *same*
/// key — must piggyback as a follower instead of issuing a second wire
/// fetch. The handshake is counter-driven, so the test is deterministic:
/// either the follower coalesces (always) or it would hang (never flake).
#[test]
fn duplicate_inflight_misses_coalesce_across_worker_vms() {
    let p = ServingParams::test();
    let module = split_module(p);
    let server = ShardedServer::spawn(
        ShardedConfig {
            shards: 1,
            train_len: 8,
            // Huge window: queued writeback trains behind the stall must
            // never block a worker before it reaches the follower path.
            window: 1 << 20,
            ..ShardedConfig::default()
        },
        NetworkModel::default(),
    );
    // Cache-starved so the session stream is guaranteed to miss.
    let ws = p.working_set_bytes();
    let cfg = RuntimeConfig::new(ws / 16, ws / 16);

    // Setups run serialized from the orchestrator (racing load phases
    // would leak intermediate bytes — the harness serializes them too);
    // quiescing leaves both caches in the same deterministic state.
    let mut vm_a = Vm::new(
        module.clone(),
        cfg,
        server.client(),
        RemotingPolicy::MaxUse,
        50,
    );
    vm_a.run("setup", &[]).expect("setup A");
    vm_a.runtime_mut().quiesce().expect("quiesce A");
    let mut vm_b = Vm::new(
        module.clone(),
        cfg,
        server.client(),
        RemotingPolicy::MaxUse,
        50,
    );
    vm_b.run("setup", &[]).expect("setup B");
    vm_b.runtime_mut().quiesce().expect("quiesce B");

    let session = |vm: &mut Vm<cards_core::net::ShardedClient>| -> i64 {
        let mut sum = 0i64;
        for t in 0..p.tenants as u64 {
            for i in 0..p.ops_per_tenant as u64 {
                let v = vm.run("request", &[t, i]).expect("request").unwrap_or(0);
                sum = sum.wrapping_add(v as i64);
            }
        }
        sum
    };

    let s0 = server.sharded_stats();
    let gate = server.stall_shard(0);
    let (sum_a, sum_b) = std::thread::scope(|scope| {
        let a = scope.spawn(|| session(&mut vm_a)); // leader: blocks on its first miss
        let b = scope.spawn(|| {
            // Wait until A is committed as the leader (its wire fetch is
            // counted before the request queues behind the stall).
            while vm_b.runtime().transport().sharded_stats().wire_fetches <= s0.wire_fetches {
                std::thread::yield_now();
            }
            // Identical module + config + history = identical cache state:
            // B's first miss is A's in-flight key, so B must follow.
            session(&mut vm_b)
        });
        while server.sharded_stats().coalesced_hits <= s0.coalesced_hits {
            std::thread::yield_now();
        }
        gate.release();
        (a.join().expect("worker A"), b.join().expect("worker B"))
    });

    let expected = serving::reference(p);
    assert_eq!(sum_a, expected, "leader's full session checksum");
    assert_eq!(sum_b, expected, "follower's full session checksum");
    let s = server.sharded_stats();
    assert!(
        s.coalesced_hits > 0,
        "duplicate in-flight miss must dedup into one transfer: {s:?}"
    );
    assert!(s.wire_fetches > 0);
}

/// Batched writebacks ride the journal across a crash/restart of every
/// shard: unacked train objects are dropped by the crash, the runtime
/// notices the generation bump, replays the journal, and the final
/// quiesced digest and checksum match an uncrashed run exactly.
#[test]
fn batched_writeback_survives_crash_restart_via_journal() {
    let p = ServingParams::test();
    let run = |crash: bool| {
        let module = split_module(p);
        let server = ShardedServer::spawn(
            ShardedConfig {
                shards: 2,
                train_len: 4,
                window: 4,
                ..ShardedConfig::default()
            },
            NetworkModel::default(),
        );
        let ws = p.working_set_bytes();
        let cfg = RuntimeConfig::new(ws / 16, ws / 16)
            .with_journal(8)
            .with_max_retries(8);
        let mut vm = Vm::new(module, cfg, server.client(), RemotingPolicy::MaxUse, 50);
        vm.run("setup", &[]).expect("setup");
        let mut sum = 0i64;
        for t in 0..p.tenants as u64 {
            if crash && t == p.tenants as u64 / 2 {
                // Mid-serve crash of the whole tier: both shards drop
                // their unacked objects and bump their generations.
                server.crash_shard(0);
                server.crash_shard(1);
            }
            for i in 0..p.ops_per_tenant as u64 {
                let v = vm.run("request", &[t, i]).expect("request").unwrap_or(0);
                sum = sum.wrapping_add(v as i64);
            }
        }
        vm.runtime_mut().quiesce().expect("quiesce");
        let detected = vm.runtime().stats().crashes_detected;
        let replays = vm.runtime().stats().journal_replays;
        drop(vm);
        (
            sum,
            server.digest(),
            detected,
            replays,
            server.sharded_stats(),
        )
    };

    let (clean_sum, clean_digest, _, _, _) = run(false);
    let (sum, digest, detected, replays, stats) = run(true);
    assert_eq!(stats.crashes, 2, "both shards must have crashed");
    assert!(detected >= 1, "generation bump must be noticed");
    assert_eq!(sum, clean_sum, "crash must not change any answer");
    assert_eq!(
        digest, clean_digest,
        "journal replay must restore the dropped train objects \
         (replays={replays}, dropped={})",
        stats.dropped_objects
    );
}

/// The checksum-quiescence oracle: concurrent serving over the sharded
/// tier must quiesce to the byte-exact per-DS digests and checksum of a
/// serial replay, across parameter seeds and shard counts (the serial
/// side deliberately uses a third shard count — digests are shard-count
/// independent).
#[test]
fn quiescence_oracle_matches_serial_replay_across_seeds_and_shards() {
    let seeds = [
        ServingParams {
            keys: 128,
            tenants: 12,
            ops_per_tenant: 10,
        },
        ServingParams {
            keys: 256,
            tenants: 9,
            ops_per_tenant: 14,
        },
        ServingParams {
            keys: 64,
            tenants: 10,
            ops_per_tenant: 8,
        },
    ];
    for p in seeds {
        let module = split_module(p);
        let ws = p.working_set_bytes();
        let cfg = RuntimeConfig::new(ws / 8, ws / 8);
        let serial_spec = ServeSpec {
            workers: 1,
            tenants: p.tenants as u64,
            ops_per_tenant: p.ops_per_tenant as u64,
            net: ShardedConfig {
                shards: 3,
                ..ShardedConfig::default()
            },
            model: NetworkModel::default(),
        };
        let serial = run_serial_replay(&module, serial_spec, cfg, RemotingPolicy::MaxUse, 50)
            .expect("serial replay");
        assert_eq!(serial.checksum, serving::reference(p), "serial oracle");
        for shards in [2usize, 5] {
            let spec = ServeSpec {
                workers: 3,
                net: ShardedConfig {
                    shards,
                    train_len: 4,
                    window: 2,
                    ..ShardedConfig::default()
                },
                ..serial_spec
            };
            let conc = run_serving(&module, spec, cfg, RemotingPolicy::MaxUse, 50)
                .expect("concurrent serve");
            assert_eq!(
                conc.requests,
                (p.tenants * p.ops_per_tenant) as u64,
                "partition must cover every session once"
            );
            assert_eq!(conc.checksum, serial.checksum, "{p:?} shards={shards}");
            assert_eq!(
                conc.digest, serial.digest,
                "quiesced server state must equal serial replay \
                 ({p:?} shards={shards})"
            );
        }
    }
}

/// Acceptance: at equal total work, eight workers must sustain at least
/// 4x the aggregate modeled instruction throughput of one worker
/// (instructions / modeled makespan; setup excluded on both sides).
#[test]
fn eight_workers_sustain_4x_aggregate_throughput() {
    let p = ServingParams {
        keys: 256,
        tenants: 64,
        ops_per_tenant: 10,
    };
    let module = split_module(p);
    // Comfortable aggregate budget: contention, not capacity, is under test.
    let cfg = RuntimeConfig::new(p.working_set_bytes(), 2 * p.working_set_bytes());
    let spec = |workers| ServeSpec {
        workers,
        tenants: p.tenants as u64,
        ops_per_tenant: p.ops_per_tenant as u64,
        net: ShardedConfig::default(),
        model: NetworkModel::default(),
    };
    let one = run_serving(&module, spec(1), cfg, RemotingPolicy::MaxUse, 50).expect("N=1");
    let eight = run_serving(&module, spec(8), cfg, RemotingPolicy::MaxUse, 50).expect("N=8");
    assert_eq!(one.requests, eight.requests, "equal total work");
    assert_eq!(one.checksum, eight.checksum);
    let tput = |r: &cards_core::vm::ServeReport| r.instructions as f64 / r.makespan_cycles as f64;
    let (t1, t8) = (tput(&one), tput(&eight));
    assert!(
        t8 >= 4.0 * t1,
        "8 workers must sustain >= 4x aggregate instruction throughput: \
         N=1 {t1:.6} vs N=8 {t8:.6} instr/cycle \
         (makespans {} vs {})",
        one.makespan_cycles,
        eight.makespan_cycles
    );
}

/// Server death is a deterministic `Disconnected`, not a hang: the same
/// kill point yields the same error at the same request, twice — for the
/// sharded tier (killed shard with writeback trains still in the window)
/// and for the plain `ThreadedTransport` seam it grew from.
#[test]
fn server_death_yields_deterministic_disconnected() {
    let p = ServingParams::test();
    let ws = p.working_set_bytes();

    // Drive sessions until the first error; return (requests served, err).
    fn until_error<T: cards_core::net::Transport>(
        vm: &mut Vm<T>,
        p: ServingParams,
    ) -> (u64, VmError) {
        let mut served = 0u64;
        for t in 0..p.tenants as u64 {
            for i in 0..p.ops_per_tenant as u64 {
                match vm.run("request", &[t, i]) {
                    Ok(_) => served += 1,
                    Err(e) => return (served, e),
                }
            }
        }
        panic!("cache-starved run must eventually touch the dead server");
    }

    let sharded_run = || {
        let module = split_module(p);
        let server = ShardedServer::spawn(
            ShardedConfig {
                shards: 1,
                train_len: 4,
                window: 2,
                ..ShardedConfig::default()
            },
            NetworkModel::default(),
        );
        let cfg = RuntimeConfig::new(ws / 16, ws / 16).with_max_retries(8);
        let mut vm = Vm::new(module, cfg, server.client(), RemotingPolicy::MaxUse, 50);
        vm.run("setup", &[]).expect("setup");
        // Killing only the primary would fail over to the backup; this
        // test wants total shard death, so take out both replicas.
        server.kill_backup(0);
        server.kill_shard(0);
        let (served, err) = until_error(&mut vm, p);
        // Quiescing against the dead tier fails the same way.
        let q = vm.runtime_mut().quiesce();
        (served, err, q)
    };
    let (served_a, err_a, q_a) = sharded_run();
    let (served_b, err_b, q_b) = sharded_run();
    assert!(
        matches!(
            err_a,
            VmError::Runtime(RtError::Net(NetError::Disconnected))
        ),
        "dead shard must surface Disconnected, got {err_a:?}"
    );
    assert_eq!(served_a, served_b, "failure point must be deterministic");
    assert_eq!(format!("{err_a:?}"), format!("{err_b:?}"));
    assert!(matches!(q_a, Err(RtError::Net(NetError::Disconnected))));
    assert_eq!(format!("{q_a:?}"), format!("{q_b:?}"));

    let threaded_run = || {
        let module = split_module(p);
        let cfg = RuntimeConfig::new(ws / 16, ws / 16).with_max_retries(8);
        let mut vm = Vm::new(
            module,
            cfg,
            ThreadedTransport::spawn(NetworkModel::default()),
            RemotingPolicy::MaxUse,
            50,
        );
        vm.run("setup", &[]).expect("setup");
        vm.runtime_mut().transport_mut().kill_server();
        until_error(&mut vm, p)
    };
    let (served_a, err_a) = threaded_run();
    let (served_b, err_b) = threaded_run();
    assert!(
        matches!(
            err_a,
            VmError::Runtime(RtError::Net(NetError::Disconnected))
        ),
        "dead threaded server must surface Disconnected, got {err_a:?}"
    );
    assert_eq!(served_a, served_b, "failure point must be deterministic");
    assert_eq!(format!("{err_a:?}"), format!("{err_b:?}"));
}
