//! Fleet observability plane integration: trace-context continuity across
//! an epoch-fenced failover (one trace id from the guard through the
//! TakeOver to the retried reply), end-to-end client/server span joins on
//! a replicated serving run, byte-identical `cards-fleet-v1` exports
//! outside the counters region, and the bounded `WireTap` ring's per-op
//! drop accounting through the sharded client.

use cards_core::net::{NetworkModel, ObjKey, ShardedConfig, ShardedServer, Transport};
use cards_core::passes::{compile, CompileOptions};
use cards_core::runtime::{RemotingPolicy, RuntimeConfig, SpanKind, TraceConfig};
use cards_core::vm::{check_fleet, extract_fleet, fleet_json, run_serving, ServeSpec, Vm};
use cards_core::workloads::serving::{self, ServingParams};

/// The CaRDS-compiled split serving module.
fn split_module(p: ServingParams) -> cards_core::ir::Module {
    let m = serving::build_split(p);
    assert!(cards_core::ir::verify_module(&m).is_empty());
    compile(m, CompileOptions::cards()).expect("compile").module
}

/// Remove the `"counters":{...}` span (the one interleaving-dependent
/// region of the fleet export), brace-matched, so runs can be
/// byte-compared.
fn strip_counters(s: &str) -> String {
    let key = "\"counters\":";
    let start = match s.find(key) {
        Some(i) => i,
        None => return s.to_string(),
    };
    let bytes = s.as_bytes();
    let open = start + key.len();
    assert_eq!(bytes[open], b'{', "counters must be an object");
    let mut depth = 0usize;
    let mut end = open;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        if b == b'{' {
            depth += 1;
        } else if b == b'}' {
            depth -= 1;
            if depth == 0 {
                end = i + 1;
                break;
            }
        }
    }
    format!("{}{}", &s[..start], &s[end..])
}

/// Satellite: trace-context continuity across failover. A request that
/// hits a killed primary carries ONE trace id from the client-side guard,
/// through the TakeOver incident the client records, to the server-side
/// spans of the retried reply on the new primary.
#[test]
fn one_trace_id_spans_guard_takeover_and_retried_reply() {
    let p = ServingParams::test();
    let module = split_module(p);
    let server = ShardedServer::spawn(
        ShardedConfig {
            shards: 1,
            train_len: 4,
            window: 2,
            ..ShardedConfig::default()
        },
        NetworkModel::default(),
    );
    let ws = p.working_set_bytes();
    // Pinned pool empty and the remotable budget starved, so serve-phase
    // requests keep localizing remotely (traced wire traffic).
    let cfg = RuntimeConfig::new(0, ws / 16)
        .with_journal(8)
        .with_max_retries(8)
        .with_trace(TraceConfig::default());
    let mut vm = Vm::new(module, cfg, server.client(), RemotingPolicy::MaxUse, 50);
    vm.run("setup", &[]).expect("setup");
    vm.runtime_mut().quiesce().expect("quiesce");
    server.kill_shard(0);
    for i in 0..8u64 {
        vm.run("request", &[0, i]).expect("request after kill");
    }
    let stats = vm.runtime().stats();
    assert!(
        stats.failovers >= 1,
        "kill must force a takeover: {stats:?}"
    );

    let fleet = extract_fleet(&vm);
    let inc = fleet
        .incidents
        .iter()
        .find(|i| i.trace != 0)
        .expect("takeover must be recorded inside a traced request");
    assert_eq!(inc.shard, 0);
    assert_ne!(inc.from, inc.to, "takeover moves the active replica");

    // The same trace id names a retained client-side tree, and that tree
    // carries the Failover leaf for the takeover handshake.
    let tree = fleet
        .trees
        .iter()
        .find(|t| t.trace == inc.trace)
        .expect("incident trace id must name a retained trace tree");
    assert!(
        tree.count_kind(SpanKind::Failover) >= 1,
        "the tree must carry the takeover as a Failover leaf"
    );

    // And the server span log holds spans for the retried reply under the
    // same trace id: guard -> wire -> TakeOver -> retried server work, one
    // id end to end.
    assert!(
        fleet
            .server
            .spans()
            .iter()
            .any(|sp| sp.ctx.trace == inc.trace),
        "retried reply must charge server spans under the incident's trace id"
    );
}

/// A fault-free replicated serving run passes every fleet invariant
/// (cross-sum, wire bracket) and exports at least one fully-joined
/// end-to-end timeline with no incidents.
#[test]
fn replicated_serving_run_joins_and_passes_fleet_checks() {
    let p = ServingParams {
        keys: 128,
        tenants: 16,
        ops_per_tenant: 6,
    };
    let module = split_module(p);
    let mut net = ShardedConfig {
        shards: 2,
        train_len: 4,
        window: 2,
        ..ShardedConfig::default()
    };
    net.replica.replicas = 2;
    let spec = ServeSpec {
        workers: 3,
        tenants: p.tenants as u64,
        ops_per_tenant: p.ops_per_tenant as u64,
        net,
        model: NetworkModel::default(),
    };
    let cfg = RuntimeConfig::new(0, p.working_set_bytes() / 4);
    let r = run_serving(&module, spec, cfg, RemotingPolicy::MaxUse, 50).expect("serve");
    check_fleet(&r).expect("fleet invariants must hold");
    let json = fleet_json("serving", &spec, &r);
    assert!(json.contains("\"schema\":\"cards-fleet-v1\""));
    assert!(
        json.contains("\"joined\":true"),
        "at least one sampled timeline must fully join"
    );
    assert!(
        json.contains("\"incidents\":[]"),
        "fault-free run must reconstruct no incidents"
    );
    assert!(json.ends_with("]}}"), "counters must be the last key");
}

/// Determinism contract: two identical fault-free serving runs emit
/// byte-identical fleet exports once the interleaving-dependent
/// `"counters"` region is stripped.
#[test]
fn identical_runs_export_identical_bytes_outside_counters() {
    let p = ServingParams {
        keys: 128,
        tenants: 12,
        ops_per_tenant: 5,
    };
    let module = split_module(p);
    let mut net = ShardedConfig {
        shards: 2,
        train_len: 4,
        window: 2,
        ..ShardedConfig::default()
    };
    net.replica.replicas = 2;
    let spec = ServeSpec {
        workers: 2,
        tenants: p.tenants as u64,
        ops_per_tenant: p.ops_per_tenant as u64,
        net,
        model: NetworkModel::default(),
    };
    let cfg = RuntimeConfig::new(0, p.working_set_bytes() / 4);
    let mut exports = Vec::new();
    for _ in 0..2 {
        let r = run_serving(&module, spec, cfg, RemotingPolicy::MaxUse, 50).expect("serve");
        exports.push(fleet_json("serving", &spec, &r));
    }
    let (a, b) = (strip_counters(&exports[0]), strip_counters(&exports[1]));
    assert!(a.len() < exports[0].len(), "strip must remove the region");
    assert_eq!(
        a, b,
        "fleet exports must be byte-identical outside shared counters"
    );
}

/// Satellite: the per-client `WireTap` ring is bounded by the configured
/// capacity and accounts every eviction per wire-op kind.
#[test]
fn wire_tap_ring_is_bounded_with_per_op_drop_accounting() {
    let mut net = ShardedConfig {
        shards: 1,
        train_len: 4,
        window: 4,
        ..ShardedConfig::default()
    };
    net.tap_capacity = 4;
    let server = ShardedServer::spawn(net, NetworkModel::default());
    let mut c = server.client();
    for i in 0..16u64 {
        c.put(ObjKey { ds: 1, index: i }, &[i as u8; 8])
            .expect("put");
    }
    c.flush().expect("flush");
    for i in 0..16u64 {
        c.fetch(ObjKey { ds: 1, index: i }).expect("fetch");
    }
    let tap = c.wire_tap().expect("sharded client retains a wire tap");
    assert_eq!(tap.len(), 4, "ring must hold exactly the configured cap");
    assert!(tap.total() >= 32, "every op is recorded: {}", tap.total());
    assert_eq!(
        tap.dropped(),
        tap.total() - tap.len() as u64,
        "every record beyond the cap is an accounted drop"
    );
    let by_op = tap.dropped_by_op();
    assert_eq!(
        by_op.iter().sum::<u64>(),
        tap.dropped(),
        "per-op drop counters must partition the total"
    );
    assert!(
        by_op.iter().filter(|&&n| n > 0).count() >= 2,
        "both fetch and write traffic must appear in the drop accounting: {by_op:?}"
    );
}
