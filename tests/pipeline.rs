//! End-to-end pipeline integration tests: IR → DSA → passes → VM on the
//! far-memory runtime, for every workload, checked against the native
//! references.

use cards_core::prelude::*;
use cards_core::workloads::{bfs, fdtd, listing1, micro, taxi};
use cards_core::{run_system, MemoryBudget, System};

fn cards_sys() -> System {
    System::Cards {
        policy: RemotingPolicy::MaxUse,
        k: 50,
    }
}

#[test]
fn listing1_all_systems_correct() {
    let p = listing1::Listing1Params::test();
    let ws = p.working_set_bytes();
    let expect = listing1::reference(p);
    let build = move || listing1::build(p);
    for sys in [
        System::LocalOnly,
        System::TrackFm,
        System::Mira,
        cards_sys(),
    ] {
        for frac in [0.25, 0.5, 1.0] {
            let budget = MemoryBudget::fraction_of(ws, frac, 0.1);
            let r = run_system(&build, sys, budget).unwrap();
            assert_eq!(r.checksum, expect, "{} @ {frac}", r.system);
        }
    }
}

#[test]
fn taxi_pipeline_correct_under_pressure() {
    let p = taxi::TaxiParams::test();
    let ws = p.working_set_bytes();
    let expect = taxi::reference(p);
    let build = move || taxi::build(p);
    for frac in [0.2, 0.6] {
        let budget = MemoryBudget::fraction_of(ws, frac, 0.1);
        let r = run_system(&build, cards_sys(), budget).unwrap();
        assert_eq!(r.checksum, expect);
        assert!(r.ds_count >= 15, "analytics DS count {}", r.ds_count);
    }
}

#[test]
fn bfs_pipeline_correct_under_pressure() {
    let p = bfs::BfsParams::test();
    let ws = p.working_set_bytes();
    let expect = bfs::reference(p);
    let build = move || bfs::build(p);
    for frac in [0.2, 0.6] {
        let budget = MemoryBudget::fraction_of(ws, frac, 0.15);
        let r = run_system(&build, cards_sys(), budget).unwrap();
        assert_eq!(r.checksum, expect);
    }
}

#[test]
fn fdtd_pipeline_correct_under_pressure() {
    let p = fdtd::FdtdParams::test();
    let ws = p.working_set_bytes();
    let expect = fdtd::reference(p);
    let build = move || fdtd::build(p);
    let budget = MemoryBudget::fraction_of(ws, 0.3, 0.1);
    let r = run_system(&build, cards_sys(), budget).unwrap();
    assert_eq!(r.checksum, expect);
    assert_eq!(r.ds_count, 15, "fdtd-apml must expose 15 grids");
}

#[test]
fn micro_kinds_correct_on_both_systems() {
    let p = micro::MicroParams::test();
    for kind in micro::MicroKind::all() {
        let expect = micro::reference(kind, p);
        let build = move || micro::build(kind, p);
        let ws = p.working_set_bytes();
        let budget = MemoryBudget::fraction_of(ws, 0.4, 0.2);
        for sys in [System::TrackFm, cards_sys()] {
            let r = run_system(&build, sys, budget).unwrap();
            assert_eq!(r.checksum, expect, "{:?}/{}", kind, r.system);
        }
    }
}

#[test]
fn guard_counts_scale_with_conservatism() {
    // TrackFM must execute at least as many guards as CaRDS on the same
    // program, and CaRDS with everything pinned should hit fast paths.
    let p = listing1::Listing1Params::test();
    let ws = p.working_set_bytes();
    let build = move || listing1::build(p);
    let budget = MemoryBudget::fraction_of(ws, 1.4, 0.05);
    let tfm = run_system(&build, System::TrackFm, budget).unwrap();
    let cards = run_system(
        &build,
        System::Cards {
            policy: RemotingPolicy::Linear,
            k: 100,
        },
        budget,
    )
    .unwrap();
    assert!(tfm.metrics.guards > 0);
    assert!(
        cards.metrics.guards < tfm.metrics.guards,
        "cards {} vs trackfm {}",
        cards.metrics.guards,
        tfm.metrics.guards
    );
    assert!(
        cards.metrics.fast_path_taken > 0,
        "versioned fast paths should fire"
    );
}

#[test]
fn transformed_modules_pass_verifier_and_round_trip() {
    // For every workload, the transformed module verifies and its textual
    // form parses back to a fixed point.
    let modules: Vec<cards_core::ir::Module> = vec![
        listing1::build(listing1::Listing1Params::test()).0,
        taxi::build(taxi::TaxiParams::test()).0,
        bfs::build(bfs::BfsParams::test()).0,
        fdtd::build(fdtd::FdtdParams::test()).0,
        micro::build(micro::MicroKind::List, micro::MicroParams::test()).0,
    ];
    for m in modules {
        let name = m.name.clone();
        let c = compile(m, CompileOptions::cards()).unwrap_or_else(|e| panic!("{name}: {e}"));
        let errs = cards_core::ir::verify_module(&c.module);
        assert!(errs.is_empty(), "{name}: {errs:?}");
        let p1 = cards_core::ir::print_module(&c.module);
        let m2 = cards_core::ir::parse_module(&p1).unwrap_or_else(|e| panic!("{name}: {e}"));
        let p2 = cards_core::ir::print_module(&m2);
        let m3 = cards_core::ir::parse_module(&p2).unwrap();
        assert_eq!(cards_core::ir::print_module(&m3), p2, "{name}");
    }
}

#[test]
fn extension_workloads_correct_under_pressure() {
    use cards_core::workloads::{kvstore, pagerank};
    // pagerank
    let p = pagerank::PagerankParams::test();
    let ws = p.working_set_bytes();
    let build = move || pagerank::build(p);
    let r = run_system(&build, cards_sys(), MemoryBudget::fraction_of(ws, 0.3, 0.1)).unwrap();
    assert_eq!(r.checksum, pagerank::reference(p));
    // kvstore across all three systems
    let kp = kvstore::KvParams::test();
    let kws = kp.working_set_bytes();
    let kbuild = move || kvstore::build(kp);
    for sys in [System::TrackFm, System::Mira, cards_sys()] {
        let r = run_system(&kbuild, sys, MemoryBudget::fraction_of(kws, 0.4, 0.15)).unwrap();
        assert_eq!(r.checksum, kvstore::reference(kp), "{}", r.system);
    }
}

#[test]
fn kvstore_hot_metadata_rewards_pinning() {
    use cards_core::workloads::kvstore;
    // With enough pinned memory for everything, pinning (linear) must beat
    // the all-remotable configuration on the skewed KV mix.
    let p = kvstore::KvParams::test();
    let ws = p.working_set_bytes();
    let build = move || kvstore::build(p);
    let budget = MemoryBudget::fraction_of(ws, 1.2, 0.1);
    let pinned = run_system(
        &build,
        System::Cards {
            policy: RemotingPolicy::Linear,
            k: 100,
        },
        budget,
    )
    .unwrap();
    let remote = run_system(
        &build,
        System::Cards {
            policy: RemotingPolicy::AllRemotable,
            k: 0,
        },
        budget,
    )
    .unwrap();
    assert!(
        pinned.cycles < remote.cycles,
        "pinned {} vs all-remotable {}",
        pinned.cycles,
        remote.cycles
    );
}
