//! Randomized property tests over the whole stack: far-pointer algebra,
//! printer/parser round-trips on generated programs, policy assignment
//! invariants, and VM native-vs-far-memory equivalence on randomized
//! kernels.
//!
//! Cases are generated with the workspace's own deterministic
//! [`SplitMix64`] PRNG (fixed seeds, so failures reproduce exactly) rather
//! than an external property-testing dependency — the workspace must build
//! and test fully offline.

use cards_core::ir::{FunctionBuilder, Module, Type};
use cards_core::net::{NetworkModel, SimTransport, SplitMix64};
use cards_core::passes::{compile, CompileOptions};
use cards_core::runtime::{
    assign_hints, DsPriority, DsSpec, FarPtr, RemotingPolicy, RuntimeConfig, StaticHint,
};
use cards_core::vm::Vm;

/// Far pointers encode/decode losslessly for all valid inputs.
#[test]
fn farptr_round_trip() {
    let mut rng = SplitMix64::new(0xfa51);
    for _ in 0..2000 {
        let handle = rng.next_below(u16::MAX as u64 - 1) as u16;
        let offset = rng.next_below(1u64 << 48);
        let p = FarPtr::encode(handle, offset);
        assert!(p.is_tagged());
        assert_eq!(p.handle(), Some(handle));
        assert_eq!(p.offset(), offset);
    }
}

/// Untagged bit patterns never pass the custody check.
#[test]
fn untagged_never_tagged() {
    let mut rng = SplitMix64::new(0xdead);
    for _ in 0..2000 {
        let bits = rng.next_below(1u64 << 48);
        assert!(!FarPtr(bits).is_tagged(), "bits {bits:#x}");
    }
}

/// Policy assignment pins exactly floor(k% · n) structures for top-k
/// policies, for any priorities.
#[test]
fn assign_hints_counts() {
    let mut rng = SplitMix64::new(0x9011c7);
    for _ in 0..150 {
        let n = 1 + rng.next_below(39) as usize;
        let k = rng.next_below(101) as u32;
        let seed = rng.next_u64();
        let scores: Vec<u32> = (0..40).map(|_| rng.next_below(1000) as u32).collect();
        let specs: Vec<DsSpec> = (0..n)
            .map(|i| {
                DsSpec::simple(format!("d{i}")).with_priority(DsPriority {
                    program_order: i as u32,
                    reach_depth: scores[i],
                    use_score: scores[(i + 7) % 40],
                })
            })
            .collect();
        let expect = n * k as usize / 100;
        for policy in [
            RemotingPolicy::MaxUse,
            RemotingPolicy::MaxReach,
            RemotingPolicy::Random { seed },
        ] {
            let hints = assign_hints(&specs, policy, k);
            let pinned = hints.iter().filter(|&&h| h == StaticHint::Pinned).count();
            assert_eq!(pinned, expect, "{policy:?} n={n} k={k}");
        }
        assert!(assign_hints(&specs, RemotingPolicy::AllRemotable, k)
            .iter()
            .all(|&h| h == StaticHint::Remotable));
    }
}

/// Network model cost is monotone in message size.
#[test]
fn net_cost_monotone() {
    let mut rng = SplitMix64::new(0x3e7);
    let m = NetworkModel::default();
    for _ in 0..2000 {
        let a = rng.next_below(1_000_000);
        let b = rng.next_below(1_000_000);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(m.fetch_cost(lo) <= m.fetch_cost(hi));
        assert!(m.writeback_cost(lo) <= m.writeback_cost(hi));
    }
}

/// A generated strided-sum kernel computes the same result natively and
/// under the CaRDS pipeline with an arbitrary (tight) cache and policy.
#[test]
fn vm_native_vs_farmem_equivalence() {
    let mut rng = SplitMix64::new(0xe9 ^ 0x51de);
    for _ in 0..12 {
        let elems = 16 + rng.next_below(384) as i64;
        let stride = 1 + rng.next_below(6) as i64;
        let mult = 1 + rng.next_below(99) as i64;
        let cache_objs = 1 + rng.next_below(5);
        let k = rng.next_below(101) as u32;
        let build = || {
            let mut m = Module::new("gen");
            let mut b = FunctionBuilder::new("main", vec![], Type::I64);
            let arr = b.alloc(b.iconst(elems * 8), Type::I64);
            let (z, one) = (b.iconst(0), b.iconst(1));
            b.counted_loop(z, b.iconst(elems), one, |b, i| {
                let v = b.mul(i, b.iconst(mult));
                let p = b.gep_index(arr, Type::I64, i);
                b.store(p, v, Type::I64);
            });
            let acc = b.alloca(Type::I64);
            b.store(acc, b.iconst(0), Type::I64);
            b.counted_loop(z, b.iconst(elems), b.iconst(stride), |b, i| {
                let p = b.gep_index(arr, Type::I64, i);
                let v = b.load(p, Type::I64);
                let cur = b.load(acc, Type::I64);
                let nx = b.add(cur, v);
                b.store(acc, nx, Type::I64);
            });
            let out = b.load(acc, Type::I64);
            b.ret(out);
            m.add_function(b.finish());
            m
        };
        // native expectation
        let expect: i64 = (0..elems).step_by(stride as usize).map(|i| i * mult).sum();
        let mut native = Vm::new(
            build(),
            RuntimeConfig::new(1 << 30, 1 << 30),
            SimTransport::default(),
            RemotingPolicy::Linear,
            100,
        );
        assert_eq!(native.run("main", &[]).unwrap(), Some(expect as u64));
        // far-memory run with a tiny cache
        let c = compile(build(), CompileOptions::cards()).unwrap();
        let mut vm = Vm::new(
            c.module,
            RuntimeConfig::new(0, cache_objs * 4096),
            SimTransport::default(),
            RemotingPolicy::MaxUse,
            k,
        );
        assert_eq!(
            vm.run("main", &[]).unwrap(),
            Some(expect as u64),
            "elems={elems} stride={stride} cache={cache_objs} k={k}"
        );
    }
}

/// Eviction bookkeeping: after arbitrary alloc/write/read sequences the
/// runtime's remotable accounting stays within budget + pin overshoot.
#[test]
fn runtime_budget_respected() {
    use cards_core::runtime::{Access, FarMemRuntime};
    let mut rng = SplitMix64::new(0xb0d6e7);
    for _ in 0..40 {
        let budget = 6 * 4096u64;
        let mut rt = FarMemRuntime::new(RuntimeConfig::new(0, budget), SimTransport::default());
        let h = rt.register_ds(DsSpec::simple("p"), StaticHint::Remotable);
        let (base, _) = rt.ds_alloc(h, 24 * 4096).unwrap();
        let nops = 1 + rng.next_below(79);
        for _ in 0..nops {
            let op = rng.next_below(3) as u8;
            let idx = rng.next_below(24);
            let ptr = base.add(idx * 4096);
            match op {
                0 => {
                    rt.guard(ptr, Access::Read, 8).unwrap();
                    let _ = rt.read_u64(ptr).unwrap();
                }
                1 => {
                    rt.guard(ptr, Access::Write, 8).unwrap();
                    rt.write_u64(ptr, idx).unwrap();
                }
                _ => {
                    rt.guard(ptr, Access::Read, 8).unwrap();
                }
            }
            let overshoot = 9 * 4096;
            assert!(rt.remotable_used() <= budget + overshoot);
        }
    }
}

/// Random generated programs: print -> parse -> print is a fixed point
/// and the parsed module still verifies.
#[test]
fn generated_programs_round_trip() {
    use cards_core::ir::testgen::{generate, GenConfig};
    let mut rng = SplitMix64::new(0x99a2);
    for _ in 0..24 {
        let seed = rng.next_u64();
        let loops = rng.next_below(4) as usize;
        let m = generate(
            seed,
            GenConfig {
                loops,
                elems: 16,
                ..GenConfig::default()
            },
        );
        let p1 = cards_core::ir::print_module(&m);
        let m2 = cards_core::ir::parse_module(&p1).expect("parse");
        assert!(cards_core::ir::verify_module(&m2).is_empty());
        assert_eq!(cards_core::ir::print_module(&m2), p1, "seed={seed}");
    }
}

/// The classical optimizer preserves program results on random programs
/// (VM-checked), and so does the full far-memory pipeline on the
/// optimized module.
#[test]
fn optimizer_and_pipeline_preserve_semantics() {
    use cards_core::ir::testgen::{generate, GenConfig};
    use cards_core::passes::optimize;
    let mut rng = SplitMix64::new(0x0b71);
    for _ in 0..10 {
        let seed = rng.next_u64();
        let cfg = GenConfig {
            elems: 24,
            loops: 2,
            ..GenConfig::default()
        };
        let run_native = |m: cards_core::ir::Module| -> u64 {
            let mut vm = Vm::new(
                m,
                RuntimeConfig::new(1 << 30, 1 << 30),
                SimTransport::default(),
                RemotingPolicy::Linear,
                100,
            );
            vm.run("main", &[]).unwrap().unwrap()
        };
        let base = run_native(generate(seed, cfg));
        // optimized
        let mut m2 = generate(seed, cfg);
        optimize(&mut m2);
        assert!(cards_core::ir::verify_module(&m2).is_empty());
        assert_eq!(run_native(m2), base, "seed={seed}");
        // optimized + far-memory pipeline with a tiny cache
        let mut m3 = generate(seed, cfg);
        optimize(&mut m3);
        let c = compile(m3, CompileOptions::cards()).unwrap();
        let mut vm = Vm::new(
            c.module,
            RuntimeConfig::new(0, 3 * 4096),
            SimTransport::default(),
            RemotingPolicy::MaxUse,
            50,
        );
        assert_eq!(vm.run("main", &[]).unwrap().unwrap(), base, "seed={seed}");
    }
}
