//! Replicated-shard failover integration: killing any single replica at
//! any scripted phase of an 8-worker run must quiesce to the byte-exact
//! serial-replay digest; stalls must never deadlock clients or the epoch
//! handshake; and the runtime must surface failovers, hedges, and fences
//! in its stats and causal traces.

use std::time::Duration;

use cards_core::net::{NetworkModel, ObjKey, ShardedConfig, ShardedServer, Transport};
use cards_core::passes::{compile, CompileOptions};
use cards_core::runtime::{RemotingPolicy, RuntimeConfig, SpanKind, TraceConfig};
use cards_core::vm::{
    run_serial_replay, run_serving_with_faults, FaultKind, ScriptedFault, ServeSpec, Vm,
};
use cards_core::workloads::serving::{self, ServingParams};

/// The CaRDS-compiled split serving module.
fn split_module(p: ServingParams) -> cards_core::ir::Module {
    let m = serving::build_split(p);
    assert!(cards_core::ir::verify_module(&m).is_empty());
    compile(m, CompileOptions::cards()).expect("compile").module
}

/// The acceptance sweep: kill either replica of a shard at an early, mid,
/// or late scripted phase of an 8-worker run — every cell must complete
/// with availability 1.0 and a quiesced digest byte-identical to the
/// serial replay, across parameter seeds and shard counts.
#[test]
fn killing_any_single_replica_at_any_phase_matches_serial_replay() {
    let seeds = [
        ServingParams {
            keys: 128,
            tenants: 12,
            ops_per_tenant: 8,
        },
        ServingParams {
            keys: 64,
            tenants: 10,
            ops_per_tenant: 10,
        },
    ];
    for p in seeds {
        let module = split_module(p);
        let ws = p.working_set_bytes();
        let cfg = RuntimeConfig::new(ws / 8, ws / 8)
            .with_journal(8)
            .with_max_retries(8);
        let total = (p.tenants * p.ops_per_tenant) as u64;
        let serial_spec = ServeSpec {
            workers: 1,
            tenants: p.tenants as u64,
            ops_per_tenant: p.ops_per_tenant as u64,
            net: ShardedConfig::default(),
            model: NetworkModel::default(),
        };
        let serial = run_serial_replay(&module, serial_spec, cfg, RemotingPolicy::MaxUse, 50)
            .expect("serial replay");
        assert_eq!(serial.checksum, serving::reference(p), "serial oracle");
        for shards in [2usize, 4] {
            for kind in [FaultKind::KillPrimary, FaultKind::KillBackup] {
                for (phase, at) in [("early", 0), ("mid", total / 2), ("late", total * 9 / 10)] {
                    let spec = ServeSpec {
                        workers: 8,
                        net: ShardedConfig {
                            shards,
                            train_len: 4,
                            window: 2,
                            ..ShardedConfig::default()
                        },
                        ..serial_spec
                    };
                    let script = [ScriptedFault {
                        after_requests: at,
                        shard: (at as usize) % shards,
                        kind,
                    }];
                    let r = run_serving_with_faults(
                        &module,
                        spec,
                        cfg,
                        RemotingPolicy::MaxUse,
                        50,
                        &script,
                    )
                    .unwrap_or_else(|e| panic!("{p:?} shards={shards} {kind:?}/{phase}: {e}"));
                    let tag = format!("{p:?} shards={shards} {kind:?}/{phase}");
                    assert_eq!(r.ok, r.issued, "failover must mask the kill ({tag})");
                    assert_eq!(r.issued, total, "every session served once ({tag})");
                    assert_eq!(r.checksum, serial.checksum, "checksum ({tag})");
                    assert_eq!(
                        r.digest, serial.digest,
                        "quiesced digest must equal serial replay ({tag})"
                    );
                    if kind == FaultKind::KillBackup {
                        assert_eq!(
                            r.net.failovers, 0,
                            "a dead backup must be invisible ({tag})"
                        );
                    }
                }
            }
        }
    }
}

/// Regression: releasing a `StallGuard` must wake *every* client queued
/// behind it — three concurrent fetchers blocked on a stalled shard all
/// complete with the right bytes after one release (a lost wakeup hangs
/// the test instead of flaking).
#[test]
fn stall_release_unblocks_multiple_concurrent_clients() {
    let server = ShardedServer::spawn(
        ShardedConfig {
            shards: 1,
            train_len: 4,
            window: 8,
            ..ShardedConfig::default()
        },
        NetworkModel::default(),
    );
    let mut setup = server.client();
    let keys: Vec<ObjKey> = (0..3).map(|i| ObjKey { ds: 1, index: i }).collect();
    for (i, k) in keys.iter().enumerate() {
        setup.put(*k, &[i as u8 + 1; 16]).expect("put");
    }
    setup.flush().expect("flush");

    let gate = server.stall_shard(0);
    let s0 = server.sharded_stats();
    std::thread::scope(|scope| {
        let handles: Vec<_> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                let mut client = server.client();
                scope.spawn(move || {
                    let f = client.fetch(k).expect("fetch through stall");
                    assert_eq!(f.bytes, vec![i as u8 + 1; 16]);
                })
            })
            .collect();
        // All three must be queued behind the stall before the release
        // (wire_fetches counts before the serve loop blocks on the gate,
        // so the counter observing 3 means all requests are committed).
        while server.sharded_stats().wire_fetches < s0.wire_fetches + 3 {
            std::thread::yield_now();
        }
        gate.release();
        for h in handles {
            h.join().expect("client thread");
        }
    });
}

/// Regression: a stall held *across* a health-timeout failover must not
/// deadlock the epoch handshake — the takeover talks only to the standby,
/// so reads complete against the backup while the old primary is still a
/// stalled zombie, and writes resume after its demotion.
#[test]
fn stall_during_failover_keeps_the_epoch_handshake_live() {
    let mut net = ShardedConfig {
        shards: 1,
        train_len: 2,
        window: 8,
        ..ShardedConfig::default()
    };
    net.replica.health_timeout = Some(Duration::from_millis(25));
    let server = ShardedServer::spawn(net, NetworkModel::default());
    let mut setup = server.client();
    let keys: Vec<ObjKey> = (0..4).map(|i| ObjKey { ds: 1, index: i }).collect();
    for (i, k) in keys.iter().enumerate() {
        setup.put(*k, &[i as u8; 8]).expect("put");
    }
    setup.flush().expect("flush");

    let old_active = server.active_replica(0);
    // Held for the whole test: the demoted primary stays a zombie.
    let _gate = server.stall_shard(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                let mut client = server.client();
                scope.spawn(move || {
                    let f = client.fetch(k).expect("fetch across failover");
                    assert_eq!(f.bytes, vec![i as u8; 8]);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("reader thread");
        }
    });
    let s = server.sharded_stats();
    assert_eq!(
        s.failovers, 1,
        "exactly one takeover resolves the race: {s:?}"
    );
    assert_ne!(
        server.active_replica(0),
        old_active,
        "backup must serve now"
    );
    // Writes go to the new primary and the tier stays fully usable with
    // the zombie still stalled.
    let mut w = server.client();
    w.put(ObjKey { ds: 1, index: 99 }, &[7; 8])
        .expect("put after takeover");
    w.flush().expect("flush after takeover");
    let f = w.fetch(ObjKey { ds: 1, index: 99 }).expect("read back");
    assert_eq!(f.bytes, vec![7; 8]);
}

/// The runtime surfaces failovers end to end: a VM serving against a
/// killed primary records `RuntimeStats::failovers`, and the causal trace
/// for the affected operation carries a `SpanKind::Failover` leaf.
#[test]
fn runtime_surfaces_failover_in_stats_and_trace_spans() {
    let p = ServingParams::test();
    let module = split_module(p);
    let server = ShardedServer::spawn(
        ShardedConfig {
            shards: 1,
            train_len: 4,
            window: 2,
            ..ShardedConfig::default()
        },
        NetworkModel::default(),
    );
    let ws = p.working_set_bytes();
    // Cache-starved so requests keep fetching remotely after the kill.
    let cfg = RuntimeConfig::new(ws / 16, ws / 16)
        .with_journal(8)
        .with_max_retries(8)
        .with_trace(TraceConfig::default());
    let mut vm = Vm::new(module, cfg, server.client(), RemotingPolicy::MaxUse, 50);
    vm.run("setup", &[]).expect("setup");
    vm.runtime_mut().quiesce().expect("quiesce");
    server.kill_shard(0);
    // A handful of requests: enough to hit the dead primary, few enough
    // that the failover op's trace tree survives the retention ring.
    for i in 0..8u64 {
        vm.run("request", &[0, i]).expect("request after kill");
    }
    let stats = vm.runtime().stats();
    assert!(
        stats.failovers >= 1,
        "failover must reach RuntimeStats: {stats:?}"
    );
    let tracer = vm.runtime().tracer();
    let spans: usize = tracer
        .trees()
        .map(|t| t.count_kind(SpanKind::Failover))
        .sum();
    assert!(spans >= 1, "failover must appear as a trace leaf");
    assert_eq!(server.sharded_stats().failovers, 1);
}

/// Hedged reads surface end to end: with the primary stalled and a hedge
/// window configured, VM requests complete against the backup without a
/// failover, and the runtime records hedged fetches plus `Hedge` spans.
#[test]
fn runtime_surfaces_hedged_reads_against_a_stalled_primary() {
    let p = ServingParams::test();
    let module = split_module(p);
    let mut net = ShardedConfig {
        shards: 1,
        train_len: 4,
        window: 8,
        ..ShardedConfig::default()
    };
    net.replica.hedge_after = Some(Duration::from_millis(2));
    let server = ShardedServer::spawn(net, NetworkModel::default());
    let ws = p.working_set_bytes();
    let cfg = RuntimeConfig::new(ws / 16, ws / 16)
        .with_journal(8)
        .with_trace(TraceConfig::default());
    let mut vm = Vm::new(module, cfg, server.client(), RemotingPolicy::MaxUse, 50);
    vm.run("setup", &[]).expect("setup");
    vm.runtime_mut().quiesce().expect("quiesce");
    let gate = server.stall_shard(0);
    // GET-only requests: reads hedge to the caught-up backup and win.
    for i in 0..4u64 {
        vm.run("request", &[0, i]).expect("hedged request");
    }
    gate.release();
    let stats = vm.runtime().stats();
    assert!(
        stats.hedged_fetches >= 1,
        "stalled primary must force hedges: {stats:?}"
    );
    assert_eq!(stats.failovers, 0, "hedging must not demote the primary");
    let tracer = vm.runtime().tracer();
    let spans: usize = tracer.trees().map(|t| t.count_kind(SpanKind::Hedge)).sum();
    assert!(spans >= 1, "hedge must appear as a trace leaf");
    let s = server.sharded_stats();
    assert!(s.hedged_fetches >= 1, "{s:?}");
}
